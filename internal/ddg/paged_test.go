package ddg

// Tests for the out-of-core paged CSR backend. The contract under test is
// strict equivalence: for any frozen graph, any budget, and any segment
// size, every Succs/Preds read through the pager returns exactly the
// bytes the resident arrays held — under sequential scans, eviction
// thrash, restriction to subgraphs, and the invariant checker.

import (
	"fmt"
	"testing"

	"discovery/internal/mir"
)

// xrng is the suite's deterministic generator.
type xrng struct{ s uint64 }

func (r *xrng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// buildRandomCSR streams a random DAG through the FrozenBuilder: n nodes,
// up to fan predecessors each, drawn from all earlier nodes so arc lists
// vary in length and some nodes become high-fan-out hubs.
func buildRandomCSR(t *testing.T, seed uint64, n, fan int) *Graph {
	t.Helper()
	r := &xrng{s: seed | 1}
	fb := NewFrozenBuilder(n, n*fan)
	for u := 0; u < n; u++ {
		var preds []NodeID
		if u > 0 {
			for j := 0; j < int(r.next()%uint64(fan+1)); j++ {
				preds = append(preds, NodeID(r.next()%uint64(u)))
			}
		}
		fb.AddNode(mir.OpFAdd, mir.Pos{File: "rand.c", Line: u + 1}, 0, nil, preds...)
	}
	g, err := fb.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return g
}

// renderAdj renders both adjacency lists of every node byte-for-byte.
func renderAdj(g *Graph) string {
	s := ""
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		s += fmt.Sprintf("%d succ=%v pred=%v\n", u, g.Succs(u), g.Preds(u))
	}
	return s
}

func TestPagedEquivalenceRandomGraphs(t *testing.T) {
	budgets := []int64{64, 256, 1024, 1 << 20}
	segBytes := []int{0, 64, 256, 4096}
	for seed := uint64(1); seed <= 6; seed++ {
		for _, budget := range budgets {
			for _, sb := range segBytes {
				seed, budget, sb := seed, budget, sb
				t.Run(fmt.Sprintf("seed%d_budget%d_seg%d", seed, budget, sb), func(t *testing.T) {
					t.Parallel()
					g := buildRandomCSR(t, seed, 200, 5)
					want := renderAdj(g)
					wantArcs := g.NumArcs()
					if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: budget, SegmentBytes: sb}); err != nil {
						t.Fatalf("SpillArcs: %v", err)
					}
					defer g.CloseSpill()
					if !g.Spilled() {
						t.Fatal("graph not marked spilled")
					}
					if got := renderAdj(g); got != want {
						t.Fatal("paged adjacency differs from resident adjacency")
					}
					st := g.PageStats()
					if st.SpilledBytes != int64(wantArcs)*2*4 {
						t.Errorf("spilled %d bytes, want %d (both arc arrays)", st.SpilledBytes, wantArcs*2*4)
					}
					if st.ResidentBytes > budget && st.Evictions == 0 {
						// Over budget is only legal when nothing was evictable
						// (a single oversized or pinned segment).
						if st.Segments > 1 && st.PinnedBytes == 0 {
							t.Errorf("resident %d over budget %d with %d segments and no evictions",
								st.ResidentBytes, budget, st.Segments)
						}
					}
					if err := g.CheckInvariants(); err != nil {
						t.Errorf("spilled graph fails invariants: %v", err)
					}
				})
			}
		}
	}
}

// TestPagedTwoSegmentThrash scans a graph whose resident budget holds
// roughly two small segments, forward then backward, so nearly every read
// evicts what the previous one faulted. The renderings must still be
// byte-identical and the stats must show real thrash.
func TestPagedTwoSegmentThrash(t *testing.T) {
	g := buildRandomCSR(t, 42, 400, 4)
	want := renderAdj(g)
	if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 128, SegmentBytes: 64}); err != nil {
		t.Fatalf("SpillArcs: %v", err)
	}
	defer g.CloseSpill()
	if got := renderAdj(g); got != want {
		t.Fatal("forward thrash scan differs from resident adjacency")
	}
	back := ""
	for u := g.NumNodes() - 1; u >= 0; u-- {
		back = fmt.Sprintf("%d succ=%v pred=%v\n", u, g.Succs(NodeID(u)), g.Preds(NodeID(u))) + back
	}
	if back != want {
		t.Fatal("backward thrash scan differs from resident adjacency")
	}
	st := g.PageStats()
	if st.Evictions == 0 {
		t.Fatalf("two-segment budget never evicted: %+v", st)
	}
	if st.Faults <= int64(st.Segments) {
		t.Fatalf("thrash never re-faulted a segment: %+v", st)
	}
	if st.PeakResidentBytes == 0 || st.Reads == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

// TestCheckInvariantsSpilledRegression pins the satellite-4 fix: the
// invariant checker used to measure CSR shape with len(succArr), which a
// spilled graph nils out — every per-node offset check then failed on a
// perfectly healthy graph. It must now read arc counts through the pager
// and pass on a spilled graph exactly as it did on the resident one.
func TestCheckInvariantsSpilledRegression(t *testing.T) {
	g := buildRandomCSR(t, 7, 300, 4)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("resident graph fails invariants: %v", err)
	}
	if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 64, SegmentBytes: 64}); err != nil {
		t.Fatalf("SpillArcs: %v", err)
	}
	defer g.CloseSpill()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("spilled graph fails invariants: %v", err)
	}
}

func TestMaybeSpillThreshold(t *testing.T) {
	g := buildRandomCSR(t, 3, 100, 3)
	size := int64(g.NumArcs()) * 2 * 4
	if did, err := g.MaybeSpill(SpillConfig{Budget: 0}); err != nil || did {
		t.Fatalf("zero budget spilled (did=%t err=%v)", did, err)
	}
	if did, err := g.MaybeSpill(SpillConfig{Budget: size + 1}); err != nil || did {
		t.Fatalf("under-budget graph spilled (did=%t err=%v)", did, err)
	}
	if g.Spilled() {
		t.Fatal("MaybeSpill left the graph spilled")
	}
	did, err := g.MaybeSpill(SpillConfig{Dir: t.TempDir(), Budget: size - 1})
	if err != nil || !did {
		t.Fatalf("over-budget graph did not spill (did=%t err=%v)", did, err)
	}
	defer g.CloseSpill()
	// Second MaybeSpill on a spilled graph is a no-op, not an error.
	if did, err := g.MaybeSpill(SpillConfig{Dir: t.TempDir(), Budget: 1}); err != nil || did {
		t.Fatalf("re-spill attempted (did=%t err=%v)", did, err)
	}
}

func TestSpillArcsErrors(t *testing.T) {
	unfrozen := New(4)
	unfrozen.AddNode(mir.OpFAdd, mir.Pos{File: "x.c", Line: 1}, 0, nil)
	if err := unfrozen.SpillArcs(SpillConfig{Budget: 1}); err == nil {
		t.Fatal("SpillArcs accepted an unfrozen graph")
	}
	g := buildRandomCSR(t, 5, 50, 3)
	if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 64}); err != nil {
		t.Fatalf("SpillArcs: %v", err)
	}
	defer g.CloseSpill()
	if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 64}); err == nil {
		t.Fatal("SpillArcs accepted an already-spilled graph")
	}
}

func TestCloseSpillLifecycle(t *testing.T) {
	var nilGraph *Graph
	if err := nilGraph.CloseSpill(); err != nil {
		t.Fatalf("nil CloseSpill: %v", err)
	}
	resident := buildRandomCSR(t, 9, 20, 2)
	if err := resident.CloseSpill(); err != nil {
		t.Fatalf("never-spilled CloseSpill: %v", err)
	}
	g := buildRandomCSR(t, 9, 100, 3)
	if err := g.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 64, SegmentBytes: 64}); err != nil {
		t.Fatalf("SpillArcs: %v", err)
	}
	if err := g.CloseSpill(); err != nil {
		t.Fatalf("CloseSpill: %v", err)
	}
	if err := g.CloseSpill(); err != nil {
		t.Fatalf("second CloseSpill: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("adjacency read after CloseSpill did not panic")
		}
	}()
	// A cold read after close must panic loudly, not return stale bytes.
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		_ = g.Succs(u)
	}
}

func TestInducedSubgraphOnSpilledBase(t *testing.T) {
	a := buildRandomCSR(t, 11, 250, 4)
	b := buildRandomCSR(t, 11, 250, 4)
	keep := make([]NodeID, 0, 125)
	for u := 0; u < 250; u += 2 {
		keep = append(keep, NodeID(u))
	}
	wantSub, _ := a.InducedSubgraph(NewSet(keep...))
	if err := b.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 96, SegmentBytes: 64}); err != nil {
		t.Fatalf("SpillArcs: %v", err)
	}
	defer b.CloseSpill()
	gotSub, _ := b.InducedSubgraph(NewSet(keep...))
	if gotSub.Spilled() {
		t.Fatal("induced subgraph inherited the base's pager")
	}
	if renderAdj(gotSub) != renderAdj(wantSub) {
		t.Fatal("subgraph induced through the pager differs from the resident one")
	}
	if gotSub.Fingerprint() != wantSub.Fingerprint() {
		t.Fatal("subgraph fingerprints differ")
	}
}

func TestSpillEmptyAndTinyGraphs(t *testing.T) {
	empty, err := NewFrozenBuilder(0, 0).Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := empty.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 1}); err != nil {
		t.Fatalf("SpillArcs on empty graph: %v", err)
	}
	defer empty.CloseSpill()
	if err := empty.CheckInvariants(); err != nil {
		t.Errorf("spilled empty graph fails invariants: %v", err)
	}

	fb := NewFrozenBuilder(2, 1)
	fb.AddNode(mir.OpFAdd, mir.Pos{File: "x.c", Line: 1}, 0, nil)
	fb.AddNode(mir.OpFAdd, mir.Pos{File: "x.c", Line: 2}, 0, nil, 0)
	tiny, err := fb.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	want := renderAdj(tiny)
	if err := tiny.SpillArcs(SpillConfig{Dir: t.TempDir(), Budget: 1, SegmentBytes: 1}); err != nil {
		t.Fatalf("SpillArcs on tiny graph: %v", err)
	}
	defer tiny.CloseSpill()
	if got := renderAdj(tiny); got != want {
		t.Fatal("tiny spilled graph differs")
	}
}
