package ddg

import (
	"testing"

	"discovery/internal/mir"
)

// viewTestGraph: 0 -> 1 -> 2 -> 3, 1 -> 4 (same shape as hashTestGraph).
func viewTestGraph() *Graph {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(mir.OpFAdd, mir.Pos{File: "v.c", Line: i + 1}, 0, nil)
	}
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(1, 4)
	g.Freeze()
	return g
}

func TestSubViewMembershipAndArcs(t *testing.T) {
	g := viewTestGraph()
	sv := g.Overlay(NewSet(0, 1, 2))

	if sv.Len() != 3 {
		t.Errorf("Len = %d, want 3", sv.Len())
	}
	// NumNodes stays the base id space so position-indexed algorithms work.
	if sv.NumNodes() != g.NumNodes() {
		t.Errorf("NumNodes = %d, want base %d", sv.NumNodes(), g.NumNodes())
	}
	for _, u := range []NodeID{0, 1, 2} {
		if !sv.Contains(u) {
			t.Errorf("Contains(%d) = false", u)
		}
	}
	for _, u := range []NodeID{3, 4} {
		if sv.Contains(u) {
			t.Errorf("Contains(%d) = true", u)
		}
	}

	// Member arcs: 0->1, 1->2. The arcs 2->3 and 1->4 are filtered out.
	if n := sv.NumArcs(); n != 2 {
		t.Errorf("NumArcs = %d, want 2", n)
	}
	if succs := sv.Succs(1); len(succs) != 1 || succs[0] != 2 {
		t.Errorf("Succs(1) = %v, want [2]", succs)
	}
	if preds := sv.Preds(2); len(preds) != 1 || preds[0] != 1 {
		t.Errorf("Preds(2) = %v, want [1]", preds)
	}

	// Boundary probes see through to the base.
	if !sv.HasExternalSucc(2) {
		t.Error("2 has the external successor 3")
	}
	if !sv.HasExternalSucc(1) {
		t.Error("1 has the external successor 4")
	}
	if sv.HasExternalSucc(0) {
		t.Error("0 has no external successor")
	}
	if sv.HasExternalPred(0) {
		t.Error("0 has no external predecessor")
	}
}

func TestSubViewReachesThroughMembersOnly(t *testing.T) {
	g := viewTestGraph()

	full := g.Overlay(NewSet(0, 1, 2, 3))
	if !full.Reaches(0, 3) {
		t.Error("0 ->* 3 through members 0,1,2,3")
	}
	// Drop the middle of the chain: reachability must break.
	holed := g.Overlay(NewSet(0, 1, 3))
	if holed.Reaches(0, 3) {
		t.Error("0 must not reach 3 when 2 is not a member")
	}
	// Endpoints outside the member set never reach.
	if full.Reaches(0, 4) {
		t.Error("non-member target must not be reachable")
	}
	if !full.Reaches(1, 1) {
		t.Error("a member reaches itself")
	}
}

func TestSubViewOverlayIntersects(t *testing.T) {
	g := viewTestGraph()
	outer := g.Overlay(NewSet(0, 1, 2, 3))
	inner := outer.Overlay(NewSet(2, 3, 4)) // 4 is outside the outer view
	if inner.Len() != 2 || !inner.Contains(2) || !inner.Contains(3) || inner.Contains(4) {
		t.Errorf("nested overlay must intersect: members %v", inner.Nodes())
	}
	if inner.Base() != g {
		t.Error("nested overlay must stay backed by the base graph")
	}
}

func TestSubViewAnalysesRestrict(t *testing.T) {
	g := viewTestGraph()
	sv := g.Overlay(NewSet(0, 1, 2, 4))

	// Weak connectivity under member arcs: {0,1,2,4} is connected through
	// 1; {0,2} alone is not (the connecting node 1 is excluded from the
	// queried set).
	if !sv.WeaklyConnected(NewSet(0, 1, 2, 4)) {
		t.Error("member set is weakly connected")
	}
	if sv.WeaklyConnected(NewSet(0, 2)) {
		t.Error("{0,2} is not connected without 1")
	}
	// WeaklyConnectedWithInputs allows the shared predecessor 1 to join
	// {2,4}.
	if !sv.WeaklyConnectedWithInputs(NewSet(2, 4)) {
		t.Error("{2,4} share the member predecessor 1")
	}

	// External-in/out default the ambient to the member set.
	if !sv.HasExternalIn(NewSet(2, 4), nil) {
		t.Error("{2,4} has in-arcs from member 1")
	}
	if sv.HasExternalOut(NewSet(2, 4), nil) {
		t.Error("{2,4} has no member out-arcs (3 is not a member)")
	}

	// ArcsBetween filters to member arcs.
	arcs := sv.ArcsBetween(NewSet(1), NewSet(2, 3, 4))
	if len(arcs) != 2 {
		t.Errorf("ArcsBetween(1, {2,3,4}) = %v, want the two member arcs", arcs)
	}
}
