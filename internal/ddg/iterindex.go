package ddg

// Loop-iteration indexes: the materialized form of the paper's DDG
// Compaction phase (§5), computed once per graph instead of once per
// sub-DDG view.
//
// A LoopIterIndex maps every node to the dense ordinal of its dynamic
// iteration of one static loop — the group the compacted view of any
// sub-DDG derived from that loop places it in. The per-thread tracer
// folds iteration runs online while the traced program executes
// (internal/trace), so finalization installs these indexes on the frozen
// graph and patterns.LoopView degenerates to a bucket sort over
// precomputed ordinals: no scope-chain walks, no per-view key maps.
// Graphs built outside the tracer (Canonicalize, InducedSubgraph sources,
// tests) simply carry no indexes and views fall back to the scope-chain
// path; both paths group byte-identically, which the differential suite
// asserts.

import (
	"fmt"
	"sort"

	"discovery/internal/analysis"
	"discovery/internal/mir"
)

// LoopIterIndex is the per-loop compaction index of one graph: Keys lists
// the loop's dynamic iterations sorted ascending by (invocation,
// iteration) — the exact group order compacted views present — and ord
// maps each node to its key's position, or -1 for nodes that did not
// execute inside the loop.
type LoopIterIndex struct {
	Loop mir.LoopID
	Keys []IterationKey
	ord  []int32
}

// NewLoopIterIndex builds an index from a key table and a node→ordinal
// map. Keys must be sorted strictly ascending by (invocation, iteration)
// and every non-negative ordinal must address a key; violations return an
// InvariantViolation instead of installing a corrupt index.
func NewLoopIterIndex(loop mir.LoopID, keys []IterationKey, ord []int32) (*LoopIterIndex, error) {
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Invocation > b.Invocation || (a.Invocation == b.Invocation && a.Iter >= b.Iter) {
			return nil, analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation,
				"ddg: iteration index for loop %d has unsorted keys at %d", loop, i)
		}
	}
	for u, o := range ord {
		if o < -1 || int(o) >= len(keys) {
			return nil, analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation,
				"ddg: iteration index for loop %d maps node %d to ordinal %d of %d keys",
				loop, u, o, len(keys))
		}
	}
	return &LoopIterIndex{Loop: loop, Keys: keys, ord: ord}, nil
}

// OrdinalOf returns the dense iteration ordinal of node u, or ok=false if
// u did not execute inside the loop.
func (ix *LoopIterIndex) OrdinalOf(u NodeID) (int32, bool) {
	if int(u) >= len(ix.ord) || ix.ord[u] < 0 {
		return 0, false
	}
	return ix.ord[u], true
}

// NumGroups returns the number of dynamic iterations the index covers.
func (ix *LoopIterIndex) NumGroups() int { return len(ix.Keys) }

// restrict remaps the index onto a subgraph: newOrd[i] = ord[back[i]].
// The key table is shared — ordinals keep their global order, which is
// all compacted views need (absent ordinals simply produce no group).
func (ix *LoopIterIndex) restrict(back []NodeID) *LoopIterIndex {
	ord := make([]int32, len(back))
	for i, old := range back {
		if int(old) < len(ix.ord) {
			ord[i] = ix.ord[old]
		} else {
			ord[i] = -1
		}
	}
	return &LoopIterIndex{Loop: ix.Loop, Keys: ix.Keys, ord: ord}
}

// InstallLoopIterIndexes attaches compaction indexes to the graph. It is
// called once, by the tracer's finalization (or a test harness), after
// the graph's nodes exist; each index must cover exactly the graph's
// nodes. Re-installation is rejected — indexes describe immutable scope
// chains, so there is never a second, different truth to install.
func (g *Graph) InstallLoopIterIndexes(ixs []*LoopIterIndex) error {
	if g.iterIdx != nil {
		return analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation,
			"ddg: loop-iteration indexes installed twice")
	}
	m := make(map[mir.LoopID]*LoopIterIndex, len(ixs))
	for _, ix := range ixs {
		if len(ix.ord) != g.NumNodes() {
			return analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation,
				"ddg: iteration index for loop %d covers %d nodes, graph has %d",
				ix.Loop, len(ix.ord), g.NumNodes())
		}
		if _, dup := m[ix.Loop]; dup {
			return analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation,
				"ddg: duplicate iteration index for loop %d", ix.Loop)
		}
		m[ix.Loop] = ix
	}
	g.iterIdx = m
	return nil
}

// LoopIterIndex returns the compaction index for the given static loop,
// or nil when the graph carries none (graphs built outside the tracer).
func (g *Graph) LoopIterIndex(loop mir.LoopID) *LoopIterIndex {
	return g.iterIdx[loop]
}

// HasIterIndexes reports whether the graph carries online-compaction
// indexes at all (diagnostics and tests).
func (g *Graph) HasIterIndexes() bool { return len(g.iterIdx) > 0 }

// IterIndexStats returns how many loops the graph carries online
// compaction for and the total dynamic iterations indexed (diagnostics).
func (g *Graph) IterIndexStats() (loops, groups int) {
	for _, ix := range g.iterIdx {
		loops++
		groups += len(ix.Keys)
	}
	return loops, groups
}

// checkIterIndexes verifies every installed index against the ground
// truth the scope chains encode: ord agrees with IterationOf node by
// node, the ordinal's key is the node's key, and the key table is sorted.
// Part of CheckInvariants — an index that drifted from the chains would
// silently change compacted views, the worst kind of wrong.
func (g *Graph) checkIterIndexes() error {
	fail := func(format string, args ...any) error {
		return analysis.Errorf(analysis.StageFinalize, analysis.InvariantViolation, format, args...)
	}
	loops := make([]mir.LoopID, 0, len(g.iterIdx))
	for loop := range g.iterIdx {
		loops = append(loops, loop)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i] < loops[j] })
	for _, loop := range loops {
		ix := g.iterIdx[loop]
		if ix.Loop != loop {
			return fail("ddg: iteration index filed under loop %d names loop %d", loop, ix.Loop)
		}
		if len(ix.ord) != g.NumNodes() {
			return fail("ddg: iteration index for loop %d covers %d nodes, graph has %d",
				loop, len(ix.ord), g.NumNodes())
		}
		for i := 1; i < len(ix.Keys); i++ {
			a, b := ix.Keys[i-1], ix.Keys[i]
			if a.Invocation > b.Invocation || (a.Invocation == b.Invocation && a.Iter >= b.Iter) {
				return fail("ddg: iteration index for loop %d has unsorted keys at %d", loop, i)
			}
		}
		for i := 0; i < g.NumNodes(); i++ {
			u := NodeID(i)
			want, inLoop := g.IterationOf(u, loop)
			o, ok := ix.OrdinalOf(u)
			if ok != inLoop {
				return fail("ddg: iteration index for loop %d disagrees with node %d's scope chain (indexed=%t, in loop=%t)",
					loop, u, ok, inLoop)
			}
			if ok && ix.Keys[o] != want {
				return fail("ddg: iteration index for loop %d groups node %d under %v, scope chain says %v",
					loop, u, ix.Keys[o], want)
			}
		}
	}
	return nil
}

// String summarizes the index.
func (ix *LoopIterIndex) String() string {
	return fmt.Sprintf("iterindex(L%d, %d groups, %d nodes)", ix.Loop, len(ix.Keys), len(ix.ord))
}
