package ddg

import (
	"fmt"
	"testing"

	"discovery/internal/mir"
)

func TestHasher128Determinism(t *testing.T) {
	h1 := NewHasher(1)
	h2 := NewHasher(1)
	for _, w := range []uint64{0, 1, 42, ^uint64(0)} {
		h1.Word(w)
		h2.Word(w)
	}
	if h1.Sum() != h2.Sum() {
		t.Error("equal word streams must hash equally")
	}
}

func TestHasher128OrderAndSeedSensitivity(t *testing.T) {
	sum := func(seed uint64, words ...uint64) Hash128 {
		h := NewHasher(seed)
		for _, w := range words {
			h.Word(w)
		}
		return h.Sum()
	}
	if sum(1, 2, 3) == sum(1, 3, 2) {
		t.Error("word order must matter")
	}
	if sum(1, 2, 3) == sum(2, 2, 3) {
		t.Error("seed must matter")
	}
	if sum(1) == sum(1, 0) {
		t.Error("a zero word must change the hash (length extension)")
	}
	if sum(1, 2, 3).IsZero() {
		t.Error("real hashes must not be the zero sentinel")
	}
}

func TestSetHash(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 2, 1) // NewSet sorts: same set
	if a.Hash() != b.Hash() {
		t.Error("equal sets must hash equally")
	}
	if a.Hash() == NewSet(1, 2).Hash() {
		t.Error("prefix must not collide with extension")
	}
	if a.Hash() == NewSet(1, 2, 4).Hash() {
		t.Error("different sets must hash differently")
	}
	// No cheap collisions across a few thousand distinct small sets.
	seen := map[Hash128]string{}
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			s := NewSet(NodeID(i), NodeID(j))
			key := fmt.Sprintf("%d-%d", i, j)
			if prev, dup := seen[s.Hash()]; dup {
				t.Fatalf("collision: {%s} vs {%s}", prev, key)
			}
			seen[s.Hash()] = key
		}
	}
}

// hashTestGraph builds a small frozen graph: a 4-node chain plus a fork.
//
//	0 -> 1 -> 2 -> 3
//	     1 -> 4
func hashTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(5)
	ops := []mir.Op{mir.OpFSub, mir.OpFAdd, mir.OpFMul, mir.OpFDiv, mir.OpFDiv}
	for i, op := range ops {
		id := g.AddNode(op, mir.Pos{File: "h.c", Line: i + 1}, 0, nil)
		if id != NodeID(i) {
			t.Fatalf("node id %d != %d", id, i)
		}
	}
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(1, 4)
	g.Freeze()
	return g
}

func TestGraphFingerprint(t *testing.T) {
	g1 := hashTestGraph(t)
	g2 := hashTestGraph(t)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("identically built graphs must fingerprint equally")
	}
	if g1.Fingerprint() != g1.Fingerprint() {
		t.Error("fingerprint must be stable (memoized)")
	}

	// One extra arc changes it.
	g3 := New(5)
	for i, op := range []mir.Op{mir.OpFSub, mir.OpFAdd, mir.OpFMul, mir.OpFDiv, mir.OpFDiv} {
		g3.AddNode(op, mir.Pos{File: "h.c", Line: i + 1}, 0, nil)
	}
	g3.AddArc(0, 1)
	g3.AddArc(1, 2)
	g3.AddArc(2, 3)
	g3.AddArc(1, 4)
	g3.AddArc(0, 4)
	g3.Freeze()
	if g3.Fingerprint() == g1.Fingerprint() {
		t.Error("an extra arc must change the fingerprint")
	}
}

func TestSubViewFingerprint(t *testing.T) {
	g := hashTestGraph(t)
	a := g.Overlay(NewSet(0, 1, 2))
	b := g.Overlay(NewSet(0, 1, 2))
	c := g.Overlay(NewSet(0, 1, 3))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal restrictions must fingerprint equally")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different member sets must fingerprint differently")
	}
	if a.Fingerprint() == g.Fingerprint() {
		t.Error("a restriction must not collide with its base")
	}
}
