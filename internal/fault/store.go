package fault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"discovery/internal/store"
)

// Store wraps inner with the plan's scripted store faults. The decorator
// sits below the resilience stack (retry → breaker → fallback), standing
// in for the unreliable device those layers exist to survive.
func (p *Plan) Store(inner store.Store) store.Store {
	return &faultStore{plan: p, inner: inner}
}

type faultStore struct {
	plan  *Plan
	inner store.Store
}

// sleep blocks for a rule's scripted latency (default 50ms).
func sleep(r *Rule) {
	d := time.Duration(r.LatencyMS) * time.Millisecond
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	time.Sleep(d)
}

// apply handles the actions common to all store ops; it reports whether
// the operation should proceed to the backend, and the error to return
// when it should not.
func (f *faultStore) apply(op string, r *Rule) (proceed bool, err error) {
	if r == nil {
		return true, nil
	}
	switch r.Action {
	case ActionError:
		return false, injectedError(op, r.Msg)
	case ActionLatency:
		sleep(r)
		return true, nil
	case ActionPanic:
		msg := r.Msg
		if msg == "" {
			msg = "injected store panic"
		}
		panic("fault: " + msg + ": " + op)
	}
	return true, nil
}

func (f *faultStore) Get(key string) (*store.Entry, bool, error) {
	proceed, err := f.apply("store.get", f.plan.next("store.get"))
	if !proceed {
		return nil, false, err
	}
	return f.inner.Get(key)
}

func (f *faultStore) Put(e *store.Entry) error {
	r := f.plan.next("store.put")
	if r != nil && r.Action == ActionTorn {
		return f.tornPut(e)
	}
	proceed, err := f.apply("store.put", r)
	if !proceed {
		return err
	}
	return f.inner.Put(e)
}

// tornPut simulates a crash between write and fsync: the put reports
// success, but what lands is a truncated entry (on a disk backend, written
// torn straight into the directory) or nothing at all (backends without a
// directory — the write is simply lost). Either way the caller believes
// the entry is durable; recovery and read-side quarantine must make the
// lie harmless.
func (f *faultStore) tornPut(e *store.Entry) error {
	type dirStore interface{ Dir() string }
	d, ok := f.inner.(dirStore)
	if !ok {
		return nil // lost write: claimed durable, never stored
	}
	data, err := json.Marshal(e)
	if err != nil || len(data) < 2 {
		return nil
	}
	// Half the document, no trailing newline: exactly what a torn page
	// boundary leaves.
	return os.WriteFile(filepath.Join(d.Dir(), e.Key+".json"), data[:len(data)/2], 0o644)
}

func (f *faultStore) Len() (int, error) {
	proceed, err := f.apply("store.len", f.plan.next("store.len"))
	if !proceed {
		return 0, err
	}
	return f.inner.Len()
}

func (f *faultStore) Close() error { return f.inner.Close() }
