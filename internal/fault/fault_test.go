package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"discovery/internal/analysis"
	"discovery/internal/store"
)

func mustPlan(t *testing.T, spec PlanSpec) *Plan {
	t.Helper()
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseRejectsMalformedPlans(t *testing.T) {
	for name, body := range map[string]string{
		"bad json":    `{"rules": [`,
		"unknown act": `{"rules":[{"op":"store.get","action":"explode"}]}`,
		"empty op":    `{"rules":[{"action":"error"}]}`,
		"torn on get": `{"rules":[{"op":"store.get","action":"torn"}]}`,
	} {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
	p, err := Parse([]byte(`{"name":"ok","seed":7,"rules":[{"op":"store.get","index":1,"action":"error"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ok" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestIndexAndEveryMatching(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{
		{Op: "store.get", Index: 1, Count: 2, Action: ActionError},
		{Op: "store.put", Every: 3, Action: ActionError},
	}})
	st := p.Store(store.NewMemory())

	var gets []bool
	for i := 0; i < 5; i++ {
		_, _, err := st.Get("res-a-b")
		gets = append(gets, err != nil)
	}
	if fmt.Sprint(gets) != "[false true true false false]" {
		t.Errorf("index window: %v", gets)
	}

	var puts []bool
	for i := 0; i < 6; i++ {
		err := st.Put(&store.Entry{Key: fmt.Sprintf("res-%d-x", i)})
		puts = append(puts, err != nil)
	}
	if fmt.Sprint(puts) != "[true false false true false false]" {
		t.Errorf("every matching: %v", puts)
	}
}

func TestInjectedErrorsAreTransientTyped(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "store.get", Index: 0, Action: ActionError, Msg: "disk on fire"}}})
	st := p.Store(store.NewMemory())
	_, _, err := st.Get("res-a-b")
	if !errors.Is(err, analysis.ErrTransient) {
		t.Fatalf("injected error %v is not transient-typed", err)
	}
	if !errors.Is(err, &analysis.Error{Stage: analysis.StageStore}) {
		t.Fatalf("injected error %v is not store-staged", err)
	}
	if p.Injected() != 1 {
		t.Errorf("Injected() = %d", p.Injected())
	}
}

func TestProbabilisticRulesAreSeedDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		p := mustPlan(t, PlanSpec{Seed: seed, Rules: []Rule{{Op: "store.get", Prob: 0.5, Action: ActionError}}})
		st := p.Store(store.NewMemory())
		var out []bool
		for i := 0; i < 32; i++ {
			_, _, err := st.Get("res-a-b")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(run(43)) {
		t.Error("different seeds produced identical fault sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == 32 {
		t.Errorf("prob 0.5 fired %d/32 times", fired)
	}
}

func TestLatencyInjection(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "store.get", Index: 0, Action: ActionLatency, LatencyMS: 30}}})
	st := p.Store(store.NewMemory())
	start := time.Now()
	if _, _, err := st.Get("res-a-b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency fault slept only %v", d)
	}
	start = time.Now()
	st.Get("res-a-b")
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("unmatched op slept %v", d)
	}
}

func TestTornPutOnDiskLeavesRecoverableDamage(t *testing.T) {
	dir := t.TempDir()
	d, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "store.put", Index: 0, Action: ActionTorn}}})
	st := p.Store(d)

	// The torn put claims success — the caller has no way to know.
	if err := st.Put(&store.Entry{Key: "res-a-b", Patterns: 5}); err != nil {
		t.Fatalf("torn put surfaced an error: %v", err)
	}
	// The kill-during-Put acceptance path: restart over the damaged
	// directory, and the torn entry must read as a miss, never as a
	// corrupt hit.
	d.Close()
	d2, err := store.NewDisk(dir)
	if err != nil {
		t.Fatalf("restart over torn store: %v", err)
	}
	defer d2.Close()
	if e, ok, err := d2.Get("res-a-b"); ok || err != nil {
		t.Fatalf("torn entry served after restart: e=%+v ok=%v err=%v", e, ok, err)
	}
	if d2.Quarantined() != 1 {
		t.Errorf("restart quarantined %d entries, want 1", d2.Quarantined())
	}
	// And the key heals on the next honest put.
	if err := d2.Put(&store.Entry{Key: "res-a-b", Patterns: 5}); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := d2.Get("res-a-b"); !ok || got.Patterns != 5 {
		t.Fatalf("healed entry: ok=%v got=%+v", ok, got)
	}
}

func TestTornPutOnMemoryIsALostWrite(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "store.put", Index: 0, Action: ActionTorn}}})
	mem := store.NewMemory()
	st := p.Store(mem)
	if err := st.Put(&store.Entry{Key: "res-a-b"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := mem.Len(); n != 0 {
		t.Errorf("lost write actually stored %d entries", n)
	}
}

func TestPhaseHookPanicsOnSchedule(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "phase.match", Index: 1, Action: ActionPanic}}})
	hook := p.PhaseHook()
	hook("simplify") // other phases never fire
	hook("match")    // match #0: clean
	recovered := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		hook("match") // match #1: scripted panic
		return ""
	}()
	if recovered == "" {
		t.Fatal("scripted phase panic did not fire")
	}
	hook("match") // match #2: clean again
}

func TestPhaseWildcardCountsGlobally(t *testing.T) {
	p := mustPlan(t, PlanSpec{Rules: []Rule{{Op: "phase.*", Index: 2, Action: ActionPanic}}})
	hook := p.PhaseHook()
	hook("simplify")
	hook("decompose")
	panicked := func() (ok bool) {
		defer func() { ok = recover() != nil }()
		hook("match") // third boundary overall
		return
	}()
	if !panicked {
		t.Fatal("wildcard rule did not fire on the third phase boundary")
	}
}
