// Package fault is the deterministic fault-injection layer behind the
// chaos harness: a seedable Plan scripts store I/O errors, latency spikes,
// partial (torn) writes, and per-phase panics, addressed by operation
// index so a scripted run replays identically every time. The plan wires
// in at two seams the production code already has — a store.Store
// decorator (Store) and the finder's phase-boundary hook (PhaseHook) — so
// the daemon under chaos runs exactly the code it runs in production, with
// only its environment lying to it.
//
// Determinism is the point. A chaos test that fails must fail the same way
// on the next run; operation counters (one per op class, atomic) make
// index/every rules exact, and probabilistic rules draw from a splitmix64
// stream seeded from Plan.Seed and the op name, never from global
// randomness.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"discovery/internal/analysis"
)

// Action is what an armed rule does to the operation it matches.
type Action string

const (
	// ActionError fails the operation with a transient-typed injected
	// error (the retry/breaker layers see exactly what a flaky disk
	// produces).
	ActionError Action = "error"
	// ActionLatency delays the operation by LatencyMS, then lets it
	// proceed normally — the I/O-stall half of the failure space.
	ActionLatency Action = "latency"
	// ActionTorn, on a store put, simulates a crash mid-write: the entry
	// is reported stored but lands torn (truncated JSON) or not at all,
	// which is what a kill between write and fsync leaves behind.
	ActionTorn Action = "torn"
	// ActionPanic panics with an injected message — at a finder phase
	// boundary this exercises the PR-3 containment; elsewhere it must be
	// caught by the serving layer's recover boundary.
	ActionPanic Action = "panic"
)

// Rule arms one action on an operation class. Matching is by the op's
// per-class invocation counter (0-based): Index/Count select a contiguous
// window, Every selects a periodic subset, Prob a seeded pseudo-random
// subset. Exactly one selector should be set; Index alone means that
// single invocation.
type Rule struct {
	// Op names the operation class: "store.get", "store.put", "store.len",
	// or "phase.<name>" for finder phases ("phase.match", "phase.trace",
	// …). "phase.*" matches every phase boundary.
	Op string `json:"op"`
	// Index is the first matching invocation (0-based), with Count
	// consecutive invocations matched (default 1). Ignored when Every or
	// Prob is set.
	Index int `json:"index,omitempty"`
	Count int `json:"count,omitempty"`
	// Every matches invocations where counter % Every == Offset.
	Every  int `json:"every,omitempty"`
	Offset int `json:"offset,omitempty"`
	// Prob matches each invocation independently with this probability,
	// drawn from the plan's seeded stream for this op class.
	Prob float64 `json:"prob,omitempty"`
	// Action is what happens on a match.
	Action Action `json:"action"`
	// LatencyMS sizes ActionLatency (default 50).
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// Msg customizes the injected error/panic message.
	Msg string `json:"msg,omitempty"`
}

// matches reports whether the rule fires for invocation i (0-based) of its
// op class, drawing from rng when probabilistic.
func (r *Rule) matches(i int, rng *splitmix) bool {
	switch {
	case r.Prob > 0:
		return rng.float() < r.Prob
	case r.Every > 0:
		return i%r.Every == r.Offset%r.Every
	default:
		count := r.Count
		if count <= 0 {
			count = 1
		}
		return i >= r.Index && i < r.Index+count
	}
}

// PlanSpec is the serialized form of a plan (one JSON document; see
// testdata/faultplans in internal/server for the corpus shape).
type PlanSpec struct {
	// Name labels the plan in logs and test output.
	Name string `json:"name,omitempty"`
	// Seed seeds the probabilistic rules' streams. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Rules is the script.
	Rules []Rule `json:"rules"`
}

// Plan is a loaded fault plan with its runtime state: per-op-class
// invocation counters and seeded random streams. Safe for concurrent use;
// the counters make concurrent matching deterministic per class up to the
// interleaving of the operations themselves.
type Plan struct {
	spec PlanSpec

	mu       sync.Mutex
	counts   map[string]int
	streams  map[string]*splitmix
	injected int64
}

// New builds a runnable plan from a spec.
func New(spec PlanSpec) (*Plan, error) {
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	for i, r := range spec.Rules {
		switch r.Action {
		case ActionError, ActionLatency, ActionTorn, ActionPanic:
		default:
			return nil, fmt.Errorf("fault: rule %d: unknown action %q", i, r.Action)
		}
		if r.Op == "" {
			return nil, fmt.Errorf("fault: rule %d: empty op", i)
		}
		if r.Action == ActionTorn && r.Op != "store.put" {
			return nil, fmt.Errorf("fault: rule %d: torn writes only apply to store.put", i)
		}
	}
	return &Plan{
		spec:    spec,
		counts:  map[string]int{},
		streams: map[string]*splitmix{},
	}, nil
}

// Parse decodes a PlanSpec JSON document into a runnable plan.
func Parse(data []byte) (*Plan, error) {
	var spec PlanSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	return New(spec)
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: reading plan: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}

// Name returns the plan's label.
func (p *Plan) Name() string { return p.spec.Name }

// Seed returns the plan's deterministic seed.
func (p *Plan) Seed() uint64 { return p.spec.Seed }

// Injected returns how many faults the plan has fired so far.
func (p *Plan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// next advances op's invocation counter and returns the first rule that
// fires for it, or nil. Wildcard phase rules ("phase.*") share one counter
// across all phases, so their indices script "the Nth phase boundary hit".
func (p *Plan) next(op string) *Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	var hit *Rule
	for ri := range p.spec.Rules {
		r := &p.spec.Rules[ri]
		if r.Op != op && !(strings.HasPrefix(op, "phase.") && r.Op == "phase.*") {
			continue
		}
		key := op
		if r.Op == "phase.*" {
			key = "phase.*"
		}
		// Counter keyed by the rule's own class so "phase.*" counts
		// globally while exact rules count per phase; advanced once per
		// invocation per class below.
		if hit == nil && r.matches(p.counts[key], p.stream(key)) {
			hit = r
		}
	}
	p.counts[op]++
	if strings.HasPrefix(op, "phase.") {
		p.counts["phase.*"]++
	}
	if hit != nil {
		p.injected++
	}
	return hit
}

// stream returns the seeded random stream for an op class; callers hold
// p.mu.
func (p *Plan) stream(key string) *splitmix {
	s, ok := p.streams[key]
	if !ok {
		seed := p.spec.Seed
		for _, c := range key {
			seed = seed*31 + uint64(c)
		}
		s = &splitmix{state: seed}
		p.streams[key] = s
	}
	return s
}

// injectedError builds the transient-typed error every ActionError fires.
func injectedError(op, msg string) error {
	if msg == "" {
		msg = "injected fault"
	}
	return analysis.Errorf(analysis.StageStore, analysis.Transient, "%s: %s", msg, op)
}

// PhaseHook returns a hook for core.Options.PhaseHook (and the serving
// layer's trace boundary): invoked with the phase name at each boundary,
// it panics where the plan scripts a panic and sleeps where it scripts
// latency. Error/torn actions are meaningless at a phase boundary and are
// ignored.
func (p *Plan) PhaseHook() func(phase string) {
	return func(phase string) {
		r := p.next("phase." + phase)
		if r == nil {
			return
		}
		switch r.Action {
		case ActionPanic:
			msg := r.Msg
			if msg == "" {
				msg = "injected phase panic"
			}
			panic(fmt.Sprintf("fault: %s: %s", msg, phase))
		case ActionLatency:
			sleep(r)
		}
	}
}

// splitmix is a splitmix64 stream.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (s *splitmix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
