package obs

// The metrics registry: counters, gauges, and histograms with fixed
// log-scale buckets, keyed by name (optionally with labels, see L). This
// is the unified metric model that absorbs the pipeline's previously
// scattered counters — SolverStats, KindStats, CacheStats — behind the
// Recorder interface: the finder still keeps its Result fields for
// backward compatibility, but every number also lands here, in one
// exportable namespace.

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram bucket layout. Every histogram shares one fixed log-scale
// layout: bucket i covers (2^(i+histMinExp-1), 2^(i+histMinExp)], so the
// upper bounds run 2^-20 … 2^20 (≈1µs…≈12min for second-valued latencies,
// 1…1M for count-valued sizes), with one overflow bucket above. A fixed
// layout keeps Observe branch-free (a log2 and a clamp), makes bucket
// counts of any two histograms comparable, and sidesteps per-metric
// configuration plumbing.
const (
	histMinExp     = -20
	histMaxExp     = 20
	histNumBounds  = histMaxExp - histMinExp + 1 // finite upper bounds
	histNumBuckets = histNumBounds + 1           // + overflow (+Inf)
)

// HistogramBounds returns the shared finite bucket upper bounds in
// ascending order (the implicit final bucket is +Inf).
func HistogramBounds() []float64 {
	bounds := make([]float64, histNumBounds)
	for i := range bounds {
		bounds[i] = math.Ldexp(1, histMinExp+i)
	}
	return bounds
}

// histBucket maps a sample to its bucket index.
func histBucket(v float64) int {
	if v <= 0 {
		return 0 // non-positive samples land in the smallest bucket
	}
	// Upper bounds are inclusive: v = 2^e belongs to the bucket whose
	// bound is 2^e, so take ceil(log2(v)).
	e := int(math.Ceil(math.Log2(v)))
	switch {
	case e < histMinExp:
		return 0
	case e > histMaxExp:
		return histNumBuckets - 1
	default:
		return e - histMinExp
	}
}

// histogram is one histogram's state. Guarded by the registry lock.
type histogram struct {
	counts [histNumBuckets]uint64
	sum    float64
	total  uint64
}

// HistogramSnapshot is an exported copy of one histogram's state.
type HistogramSnapshot struct {
	// Counts holds per-bucket sample counts (not cumulative); the last
	// entry is the overflow bucket. len(Counts) == len(HistogramBounds())+1.
	Counts []uint64
	// Sum is the sum of all observed samples, Total their count.
	Sum   float64
	Total uint64
}

// Registry accumulates named metrics. Safe for concurrent use. The zero
// value is not usable; Collector creates one, and NewRegistry exists for
// direct use in tests.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
	}
}

// Count adds delta to the named counter.
func (r *Registry) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets the named gauge to v (last write wins).
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one sample into the named histogram.
func (r *Registry) Observe(name string, v float64) {
	b := histBucket(v)
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.counts[b]++
	h.sum += v
	h.total++
	r.mu.Unlock()
}

// Counters returns a copy of all counters.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of all gauges.
func (r *Registry) Gauges() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Histograms returns a snapshot of all histograms.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for k, h := range r.hists {
		out[k] = HistogramSnapshot{
			Counts: append([]uint64(nil), h.counts[:]...),
			Sum:    h.sum,
			Total:  h.total,
		}
	}
	return out
}

// L renders a labeled metric name, "name{k1=\"v1\",k2=\"v2\"}", with the
// label keys sorted so the same label set always yields the same registry
// key. Values are escaped per the Prometheus text format (backslash,
// double quote, newline).
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// splitName splits a (possibly labeled) registry key into the metric
// family name and the rendered label block ("" when unlabeled).
func splitName(key string) (family, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}
