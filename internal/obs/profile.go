package obs

// Profiling hooks: runtime/pprof CPU and heap capture bracketing an
// analysis run. The CLIs start a Profiler around trace+Find when -pprof
// is given; runtime/trace region mirroring lives in Collector (spans map
// 1:1 to regions whenever the process runs under `go test -trace` or an
// explicit trace.Start).

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler captures a CPU profile for its lifetime and a heap profile at
// Stop. Zero value is inert; use StartProfile.
type Profiler struct {
	cpuPath, heapPath string
	cpuFile           *os.File
}

// StartProfile begins CPU profiling into prefix.cpu.pprof; Stop finishes
// it and writes the heap profile to prefix.heap.pprof.
func StartProfile(prefix string) (*Profiler, error) {
	p := &Profiler{
		cpuPath:  prefix + ".cpu.pprof",
		heapPath: prefix + ".heap.pprof",
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return nil, fmt.Errorf("obs: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(p.cpuPath)
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	p.cpuFile = f
	return p, nil
}

// Stop ends the CPU profile and writes the heap profile (after a GC, so
// it reflects live memory). Safe to call once; returns the first error.
func (p *Profiler) Stop() error {
	if p == nil || p.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	p.cpuFile = nil

	runtime.GC()
	hf, herr := os.Create(p.heapPath)
	if herr != nil {
		if err == nil {
			err = fmt.Errorf("obs: creating heap profile: %w", herr)
		}
		return err
	}
	if werr := pprof.WriteHeapProfile(hf); werr != nil && err == nil {
		err = fmt.Errorf("obs: writing heap profile: %w", werr)
	}
	if cerr := hf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// CPUPath and HeapPath name the profile files (useful for "wrote ..."
// messages).
func (p *Profiler) CPUPath() string  { return p.cpuPath }
func (p *Profiler) HeapPath() string { return p.heapPath }
