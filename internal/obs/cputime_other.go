//go:build !unix

package obs

import "time"

// processCPU is unavailable on this platform; span CPU times read as
// zero and the wall-clock numbers remain exact.
func processCPU() time.Duration { return 0 }
