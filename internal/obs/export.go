package obs

// Exporters: the human-readable phase tree, the JSON document, and the
// Prometheus text format. All three read one consistent snapshot of the
// collector (Spans / registry copies), so they can run while the process
// is still working — open spans export with their duration so far.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TreeNode is one span with its children, as assembled by Tree.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
}

// Tree assembles the collector's spans into their forest: one root node
// per span with no (or unknown) parent, children in start order. Spans
// whose parent id was never recorded — a parent emitted into a different
// recorder, say — become roots rather than being dropped.
func Tree(c *Collector) []*TreeNode {
	spans := c.Spans()
	nodes := make(map[SpanID]*TreeNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &TreeNode{Span: s}
	}
	var roots []*TreeNode
	for _, s := range spans { // Spans is in start order already
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// RenderOptions configures RenderTree.
type RenderOptions struct {
	// MaxChildren caps the children rendered under one node; the rest are
	// folded into one "… N more" line carrying their summed wall time.
	// The cap keeps solve-heavy match phases readable (one span per solve
	// adds up). 0 means the default of 12; negative means unlimited.
	MaxChildren int
}

func (o RenderOptions) maxChildren() int {
	switch {
	case o.MaxChildren == 0:
		return 12
	case o.MaxChildren < 0:
		return 1 << 30
	default:
		return o.MaxChildren
	}
}

// RenderTree renders the collector's span forest as an indented tree:
// one line per span with wall time, CPU time (where the platform provides
// it), and attributes; failed spans carry a "!" marker, spans still open
// at render time an "(open)" marker.
func RenderTree(c *Collector, opts RenderOptions) string {
	var sb strings.Builder
	for _, root := range Tree(c) {
		renderNode(&sb, root, "", "", opts)
	}
	return sb.String()
}

func renderNode(sb *strings.Builder, n *TreeNode, lead, childLead string, opts RenderOptions) {
	s := n.Span
	fmt.Fprintf(sb, "%s%s", lead, s.Name)
	if s.Failed {
		sb.WriteString(" !")
	}
	fmt.Fprintf(sb, "  %s", fmtDur(s.Wall))
	if s.CPU > 0 {
		fmt.Fprintf(sb, " (cpu %s)", fmtDur(s.CPU))
	}
	if !s.Ended {
		sb.WriteString(" (open)")
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, a.Val)
	}
	sb.WriteByte('\n')

	kids := n.Children
	limit := opts.maxChildren()
	var folded []*TreeNode
	if len(kids) > limit {
		// Keep the slowest cap children (they answer "where did the time
		// go"), preserving start order among the kept.
		bySlow := append([]*TreeNode(nil), kids...)
		sort.SliceStable(bySlow, func(i, j int) bool {
			return bySlow[i].Span.Wall > bySlow[j].Span.Wall
		})
		keep := map[*TreeNode]bool{}
		for _, k := range bySlow[:limit] {
			keep[k] = true
		}
		var kept []*TreeNode
		for _, k := range kids {
			if keep[k] {
				kept = append(kept, k)
			} else {
				folded = append(folded, k)
			}
		}
		kids = kept
	}
	for i, child := range kids {
		last := i == len(kids)-1 && len(folded) == 0
		branch, indent := "├─ ", "│  "
		if last {
			branch, indent = "└─ ", "   "
		}
		renderNode(sb, child, childLead+branch, childLead+indent, opts)
	}
	if len(folded) > 0 {
		var wall time.Duration
		failed := 0
		for _, f := range folded {
			wall += f.Span.Wall
			if f.Span.Failed {
				failed++
			}
		}
		fmt.Fprintf(sb, "%s└─ … %d more span(s)  %s", childLead, len(folded), fmtDur(wall))
		if failed > 0 {
			fmt.Fprintf(sb, "  (%d failed)", failed)
		}
		sb.WriteByte('\n')
	}
}

// fmtDur renders a duration compactly (ms precision above 1s, µs
// precision above 1ms).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// SpanJSON is one span in the JSON export.
type SpanJSON struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"` // offset from the collector's epoch
	WallUS  int64             `json:"wall_us"`
	CPUUS   int64             `json:"cpu_us,omitempty"`
	Ended   bool              `json:"ended"`
	Failed  bool              `json:"failed,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// HistogramJSON is one histogram in the JSON export.
type HistogramJSON struct {
	Bounds []float64 `json:"bounds"` // finite upper bounds; last bucket is +Inf
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Document is the JSON export of one collector: the span forest
// (flattened, parent links preserved) and all metrics.
type Document struct {
	Spans      []SpanJSON               `json:"spans"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
}

// JSON exports the collector as an indented JSON document.
func JSON(c *Collector) ([]byte, error) {
	doc := Document{Spans: []SpanJSON{}}
	epoch := c.Epoch()
	for _, s := range c.Spans() {
		sj := SpanJSON{
			ID:      uint64(s.ID),
			Parent:  uint64(s.Parent),
			Name:    s.Name,
			StartUS: s.Start.Sub(epoch).Microseconds(),
			WallUS:  s.Wall.Microseconds(),
			CPUUS:   s.CPU.Microseconds(),
			Ended:   s.Ended,
			Failed:  s.Failed,
		}
		if len(s.Attrs) > 0 {
			sj.Attrs = map[string]string{}
			for _, a := range s.Attrs {
				sj.Attrs[a.Key] = a.Val
			}
		}
		doc.Spans = append(doc.Spans, sj)
	}
	reg := c.Metrics()
	if m := reg.Counters(); len(m) > 0 {
		doc.Counters = m
	}
	if m := reg.Gauges(); len(m) > 0 {
		doc.Gauges = m
	}
	if hs := reg.Histograms(); len(hs) > 0 {
		doc.Histograms = map[string]HistogramJSON{}
		bounds := HistogramBounds()
		for name, h := range hs {
			doc.Histograms[name] = HistogramJSON{
				Bounds: bounds, Counts: h.Counts, Sum: h.Sum, Count: h.Total,
			}
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Prometheus renders the registry in the Prometheus text exposition
// format: counters as "<family> counter", gauges as gauge, histograms as
// histogram with cumulative le buckets, _sum, and _count. Families are
// sorted, as are label sets within one family, so output is stable.
func Prometheus(reg *Registry) string {
	var sb strings.Builder

	type series struct{ key, labels string }
	group := func(keys []string) (families []string, byFamily map[string][]series) {
		byFamily = map[string][]series{}
		for _, key := range keys {
			fam, labels := splitName(key)
			byFamily[fam] = append(byFamily[fam], series{key, labels})
		}
		for fam := range byFamily {
			families = append(families, fam)
			ss := byFamily[fam]
			sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		}
		sort.Strings(families)
		return families, byFamily
	}
	keysOf := func(n int, iter func(add func(string))) []string {
		keys := make([]string, 0, n)
		iter(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}

	counters := reg.Counters()
	fams, byFam := group(keysOf(len(counters), func(add func(string)) {
		for k := range counters {
			add(k)
		}
	}))
	for _, fam := range fams {
		fmt.Fprintf(&sb, "# TYPE %s counter\n", fam)
		for _, s := range byFam[fam] {
			fmt.Fprintf(&sb, "%s%s %d\n", fam, s.labels, counters[s.key])
		}
	}

	gauges := reg.Gauges()
	fams, byFam = group(keysOf(len(gauges), func(add func(string)) {
		for k := range gauges {
			add(k)
		}
	}))
	for _, fam := range fams {
		fmt.Fprintf(&sb, "# TYPE %s gauge\n", fam)
		for _, s := range byFam[fam] {
			fmt.Fprintf(&sb, "%s%s %s\n", fam, s.labels, fmtFloat(gauges[s.key]))
		}
	}

	hists := reg.Histograms()
	fams, byFam = group(keysOf(len(hists), func(add func(string)) {
		for k := range hists {
			add(k)
		}
	}))
	bounds := HistogramBounds()
	for _, fam := range fams {
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", fam)
		for _, s := range byFam[fam] {
			h := hists[s.key]
			var cum uint64
			for i, b := range bounds {
				cum += h.Counts[i]
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", fam, withLabel(s.labels, "le", fmtFloat(b)), cum)
			}
			cum += h.Counts[len(bounds)]
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", fam, withLabel(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", fam, s.labels, fmtFloat(h.Sum))
			fmt.Fprintf(&sb, "%s_count%s %d\n", fam, s.labels, h.Total)
		}
	}
	return sb.String()
}

// withLabel inserts one extra label into a rendered label block.
func withLabel(labels, key, val string) string {
	extra := key + `="` + escapeLabel(val) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	// labels is "{...}"; splice before the closing brace.
	return labels[:len(labels)-1] + "," + extra + "}"
}

// fmtFloat renders a float for the exposition format (no exponent for
// integral values within range, shortest round-trip otherwise).
func fmtFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
