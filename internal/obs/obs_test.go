package obs

import (
	"encoding/json"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestNopRecorder(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop reports enabled")
	}
	if id := Nop.StartSpan("x", 0); id != 0 {
		t.Errorf("Nop.StartSpan returned %d, want 0", id)
	}
	// All no-ops must be callable without effect.
	Nop.EndSpan(0)
	Nop.EndSpan(42, Failed("boom"))
	Nop.Count("c", 1)
	Nop.Gauge("g", 1)
	Nop.Observe("h", 1)
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) is not Nop")
	}
	c := NewCollector()
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop(c) did not pass the collector through")
	}
}

func TestCollectorSpans(t *testing.T) {
	c := NewCollector()
	if !c.Enabled() {
		t.Fatal("collector not enabled")
	}
	root := c.StartSpan("find", 0, Str("bench", "md5"))
	child := c.StartSpan("match", root, Int("subs", 7))
	c.EndSpan(child, Int("matched", 3))
	fail := c.StartSpan("merge", root)
	c.EndSpan(fail, Failed("injected"))
	open := c.StartSpan("late", root)
	_ = open // deliberately left open
	c.EndSpan(root)

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if s := byName["find"]; !s.Ended || s.Parent != 0 || s.Failed {
		t.Errorf("root span wrong: %+v", s)
	}
	if v, ok := byName["find"].Attr("bench"); !ok || v != "md5" {
		t.Errorf("root attr lost: %v %v", v, ok)
	}
	if s := byName["match"]; s.Parent != root || !s.Ended {
		t.Errorf("child span wrong: %+v", s)
	}
	if v, _ := byName["match"].Attr("matched"); v != "3" {
		t.Errorf("end attrs not merged: %q", v)
	}
	if s := byName["merge"]; !s.Failed {
		t.Errorf("failed span not marked: %+v", s)
	}
	if s := byName["late"]; s.Ended {
		t.Errorf("open span reported ended: %+v", s)
	}
	for _, s := range spans {
		if s.Wall < 0 {
			t.Errorf("span %s has negative wall %v", s.Name, s.Wall)
		}
	}

	// Double-end and zero-end are no-ops.
	before := byName["match"].Wall
	time.Sleep(time.Millisecond)
	c.EndSpan(child)
	c.EndSpan(0)
	c.EndSpan(9999)
	if got := c.Spans()[1].Wall; got != before {
		t.Errorf("double EndSpan changed wall time: %v -> %v", before, got)
	}
}

func TestTreeAssembly(t *testing.T) {
	c := NewCollector()
	a := c.StartSpan("a", 0)
	b := c.StartSpan("b", a)
	c.StartSpan("c", b)
	c.StartSpan("orphan", 555) // unknown parent becomes a root
	roots := Tree(c)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Span.Name != "a" || roots[1].Span.Name != "orphan" {
		t.Fatalf("unexpected roots: %s, %s", roots[0].Span.Name, roots[1].Span.Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Span.Name != "b" {
		t.Fatal("child b not under a")
	}
	if len(roots[0].Children[0].Children) != 1 {
		t.Fatal("grandchild c not under b")
	}
}

func TestRenderTree(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("find", 0)
	m := c.StartSpan("match", root, Int("iteration", 1))
	c.EndSpan(m)
	f := c.StartSpan("merge", root)
	c.EndSpan(f, Failed("injected bug"))
	c.EndSpan(root)

	out := RenderTree(c, RenderOptions{})
	for _, want := range []string{"find", "├─ match", "iteration=1", "└─ merge !", "failed=injected bug"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTreeFoldsChildren(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("match", 0)
	for i := 0; i < 40; i++ {
		s := c.StartSpan("solve", root)
		c.EndSpan(s)
	}
	c.EndSpan(root)
	out := RenderTree(c, RenderOptions{MaxChildren: 5})
	if got := strings.Count(out, "solve"); got != 5 {
		t.Errorf("rendered %d solve lines, want 5:\n%s", got, out)
	}
	if !strings.Contains(out, "… 35 more span(s)") {
		t.Errorf("missing fold line:\n%s", out)
	}
	if got := strings.Count(RenderTree(c, RenderOptions{MaxChildren: -1}), "solve"); got != 40 {
		t.Errorf("unlimited render shows %d solve lines, want 40", got)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Count("runs_total", 2)
	r.Count("runs_total", 3)
	r.Count(L("hits_total", "kind", "map"), 1)
	r.Gauge("pool", 7)
	r.Gauge("pool", 9) // last write wins
	if got := r.Counters()["runs_total"]; got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.Counters()[`hits_total{kind="map"}`]; got != 1 {
		t.Errorf("labeled counter = %d, want 1", got)
	}
	if got := r.Gauges()["pool"]; got != 9 {
		t.Errorf("gauge = %v, want 9", got)
	}
}

func TestLabelRendering(t *testing.T) {
	if got := L("m"); got != "m" {
		t.Errorf("L(m) = %q", got)
	}
	// Keys sort, so the registry key is order-independent.
	a := L("m", "b", "2", "a", "1")
	b := L("m", "a", "1", "b", "2")
	if a != b || a != `m{a="1",b="2"}` {
		t.Errorf("label order not canonical: %q vs %q", a, b)
	}
	if got := L("m", "k", "a\"b\\c\nd"); got != `m{k="a\"b\\c\nd"}` {
		t.Errorf("escaping wrong: %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != histNumBounds {
		t.Fatalf("bounds length %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds not log2-spaced at %d: %v %v", i, bounds[i-1], bounds[i])
		}
	}
	r := NewRegistry()
	// Exact bound values are inclusive upper bounds.
	r.Observe("h", 1.0)
	r.Observe("h", 1.5)
	r.Observe("h", 0)         // clamps to the first bucket
	r.Observe("h", -3)        // ditto
	r.Observe("h", 1e300)     // overflow bucket
	r.Observe("h", bounds[0]) // smallest finite bound
	h := r.Histograms()["h"]
	if h.Total != 6 {
		t.Fatalf("total %d, want 6", h.Total)
	}
	var sum uint64
	for _, n := range h.Counts {
		sum += n
	}
	if sum != h.Total {
		t.Fatalf("bucket counts sum %d != total %d", sum, h.Total)
	}
	oneIdx := histBucket(1.0)
	if bounds[oneIdx] != 1 {
		t.Errorf("1.0 in bucket with bound %v, want 1", bounds[oneIdx])
	}
	if got := histBucket(1.5); bounds[got] != 2 {
		t.Errorf("1.5 in bucket with bound %v, want 2", bounds[got])
	}
	if histBucket(0) != 0 || histBucket(-3) != 0 || histBucket(math.SmallestNonzeroFloat64) != 0 {
		t.Error("small samples not clamped to the first bucket")
	}
	if histBucket(1e300) != histNumBuckets-1 {
		t.Error("huge sample not in the overflow bucket")
	}
}

func TestJSONExport(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("find", 0, Str("bench", "md5"))
	c.EndSpan(root)
	c.Count("runs_total", 4)
	c.Gauge("pool", 2)
	c.Observe("latency_seconds", 0.5)

	data, err := JSON(c)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "find" || !doc.Spans[0].Ended {
		t.Errorf("spans wrong: %+v", doc.Spans)
	}
	if doc.Spans[0].Attrs["bench"] != "md5" {
		t.Errorf("attrs lost: %+v", doc.Spans[0].Attrs)
	}
	if doc.Counters["runs_total"] != 4 || doc.Gauges["pool"] != 2 {
		t.Errorf("metrics wrong: %+v %+v", doc.Counters, doc.Gauges)
	}
	h := doc.Histograms["latency_seconds"]
	if h.Count != 1 || h.Sum != 0.5 || len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("histogram wrong: %+v", h)
	}
}

// promLine matches one sample line of the Prometheus text format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?[0-9.eE+-]+|\+Inf|-Inf)$`)

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Count("discovery_solver_runs_total", 3)
	r.Count(L("discovery_cache_hits_total", "kind", "map"), 2)
	r.Count(L("discovery_cache_hits_total", "kind", "linear reduction"), 1)
	r.Gauge("discovery_pool_size", 12)
	r.Observe("discovery_solve_seconds", 0.001)
	r.Observe("discovery_solve_seconds", 2.5)

	out := Prometheus(r)
	var seenType = map[string]string{}
	var count, lastBucket uint64
	haveCount, haveSum := false, false
	var prevCum int64 = -1
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			seenType[parts[2]] = parts[3]
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
		fields := strings.Fields(line)
		name, val := fields[0], fields[1]
		switch {
		case strings.HasPrefix(name, "discovery_solve_seconds_bucket"):
			v, _ := strconv.ParseInt(val, 10, 64)
			if v < prevCum {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, prevCum)
			}
			prevCum = v
			lastBucket = uint64(v)
		case strings.HasPrefix(name, "discovery_solve_seconds_sum"):
			f, _ := strconv.ParseFloat(val, 64)
			if f != 2.501 {
				t.Errorf("sum = %v, want 2.501", f)
			}
			haveSum = true
		case strings.HasPrefix(name, "discovery_solve_seconds_count"):
			v, _ := strconv.ParseUint(val, 10, 64)
			count, haveCount = v, true
		}
	}
	if seenType["discovery_solver_runs_total"] != "counter" ||
		seenType["discovery_cache_hits_total"] != "counter" ||
		seenType["discovery_pool_size"] != "gauge" ||
		seenType["discovery_solve_seconds"] != "histogram" {
		t.Errorf("TYPE lines wrong: %v", seenType)
	}
	if !haveCount || !haveSum {
		t.Fatal("histogram missing _sum or _count")
	}
	if count != 2 || lastBucket != count {
		t.Errorf("count %d, +Inf bucket %d; want both 2", count, lastBucket)
	}
	// Label sets within a family are sorted, so output is deterministic.
	if Prometheus(r) != out {
		t.Error("Prometheus output not stable across calls")
	}
	i := strings.Index(out, `kind="linear reduction"`)
	j := strings.Index(out, `kind="map"`)
	if i < 0 || j < 0 || i > j {
		t.Errorf("label sets not sorted:\n%s", out)
	}
}

func TestProfiler(t *testing.T) {
	prefix := t.TempDir() + "/prof"
	p, err := StartProfile(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something in it.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUPath(), p.HeapPath()} {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", path, err)
		}
	}
	if err := p.Stop(); err != nil {
		t.Errorf("second Stop errored: %v", err)
	}
}
