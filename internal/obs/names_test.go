package obs

import "testing"

// TestCanonicalMetricNames pins every exported metric name. Dashboards and
// the report exporters query these strings verbatim, so a rename is a
// breaking change that must be made deliberately — by updating this test
// along with every consumer — never by accident.
func TestCanonicalMetricNames(t *testing.T) {
	want := map[string]string{
		"MetricSolveSeconds":     MetricSolveSeconds,
		"MetricViewGroups":       MetricViewGroups,
		"MetricTraceThreadNodes": MetricTraceThreadNodes,
		"MetricPrescreenSeconds": MetricPrescreenSeconds,
		"MetricSolverRuns":       MetricSolverRuns,
		"MetricSolverTimeouts":   MetricSolverTimeouts,
		"MetricSolverRestarts":   MetricSolverRestarts,
		"MetricSolverNogoods":    MetricSolverNogoods,
		"MetricCacheHits":        MetricCacheHits,
		"MetricCacheMisses":      MetricCacheMisses,
		"MetricCacheSkips":       MetricCacheSkips,
		"MetricPrescreenSkips":   MetricPrescreenSkips,
		"MetricPrescreenChecks":  MetricPrescreenChecks,
		"MetricTraceNodes":       MetricTraceNodes,
		"MetricMatches":          MetricMatches,
		"MetricTraceThroughput":  MetricTraceThroughput,
		"MetricPoolSize":         MetricPoolSize,
		"MetricCacheEntries":     MetricCacheEntries,
		"MetricIterations":       MetricIterations,
		"MetricPatterns":         MetricPatterns,
		"MetricSchedWorkers":     MetricSchedWorkers,
		"MetricSchedQueueDepth":  MetricSchedQueueDepth,
		"MetricSchedTasks":       MetricSchedTasks,
		"MetricSchedSteals":      MetricSchedSteals,
		"MetricSchedExpired":     MetricSchedExpired,
		"MetricSchedTaskSeconds": MetricSchedTaskSeconds,
	}
	canonical := map[string]string{
		"MetricSolveSeconds":     "discovery_solve_seconds",
		"MetricViewGroups":       "discovery_view_groups",
		"MetricTraceThreadNodes": "discovery_trace_thread_nodes",
		"MetricPrescreenSeconds": "discovery_prescreen_seconds",
		"MetricSolverRuns":       "discovery_solver_runs_total",
		"MetricSolverTimeouts":   "discovery_solver_timeouts_total",
		"MetricSolverRestarts":   "discovery_solver_restarts_total",
		"MetricSolverNogoods":    "discovery_solver_nogoods_total",
		"MetricCacheHits":        "discovery_cache_hits_total",
		"MetricCacheMisses":      "discovery_cache_misses_total",
		"MetricCacheSkips":       "discovery_cache_skips_total",
		"MetricPrescreenSkips":   "discovery_prescreen_skips_total",
		"MetricPrescreenChecks":  "discovery_prescreen_checks_total",
		"MetricTraceNodes":       "discovery_trace_nodes_total",
		"MetricMatches":          "discovery_matches_total",
		"MetricTraceThroughput":  "discovery_trace_nodes_per_second",
		"MetricPoolSize":         "discovery_pool_size",
		"MetricCacheEntries":     "discovery_cache_entries",
		"MetricIterations":       "discovery_find_iterations",
		"MetricPatterns":         "discovery_patterns_total",
		"MetricSchedWorkers":     "discovery_sched_workers",
		"MetricSchedQueueDepth":  "discovery_sched_queue_depth",
		"MetricSchedTasks":       "discovery_sched_tasks_total",
		"MetricSchedSteals":      "discovery_sched_steals_total",
		"MetricSchedExpired":     "discovery_sched_expired_total",
		"MetricSchedTaskSeconds": "discovery_sched_task_seconds",
	}
	seen := map[string]string{}
	for sym, got := range want {
		if got != canonical[sym] {
			t.Errorf("%s = %q, want %q", sym, got, canonical[sym])
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("metric name %q shared by %s and %s", got, prev, sym)
		}
		seen[got] = sym
	}
}
