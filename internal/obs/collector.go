package obs

import (
	"context"
	rtrace "runtime/trace"
	"sync"
	"time"
)

// Collector is the in-memory Recorder: it accumulates spans and metrics
// for one analysis run and exports them afterwards (Tree, RenderTree,
// JSON, Prometheus). Safe for concurrent use — the finder's matching
// workers and the tracer's finalization all emit into one Collector.
//
// Span CPU time is the process-wide CPU delta (user+system, all threads)
// between the span's start and end, read from the OS where supported.
// For a span that brackets parallel work this deliberately exceeds wall
// time — cpu/wall is the span's effective parallelism — and for spans
// that overlap concurrently it double-counts; it answers "what did the
// machine spend while this span was open", not "what did this goroutine
// burn".
//
// When the process is running under runtime/trace, every span is mirrored
// 1:1 into a trace region of the same name, so go tool trace timelines
// line up with the exported phase tree.
type Collector struct {
	reg *Registry

	mu      sync.Mutex
	spans   []spanRec
	regions map[SpanID]*rtrace.Region
	epoch   time.Time
}

// spanRec is one span's mutable state; index+1 in Collector.spans is its
// SpanID.
type spanRec struct {
	name   string
	parent SpanID
	start  time.Time
	cpu0   time.Duration // process CPU at start
	wall   time.Duration
	cpu    time.Duration
	ended  bool
	failed bool
	attrs  []Attr
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{reg: NewRegistry(), epoch: time.Now()}
}

// Enabled implements Recorder: a Collector always records.
func (c *Collector) Enabled() bool { return true }

// StartSpan implements Recorder.
func (c *Collector) StartSpan(name string, parent SpanID, attrs ...Attr) SpanID {
	now := time.Now()
	cpu := processCPU()
	var region *rtrace.Region
	if rtrace.IsEnabled() {
		region = rtrace.StartRegion(context.Background(), name)
	}
	c.mu.Lock()
	c.spans = append(c.spans, spanRec{
		name:   name,
		parent: parent,
		start:  now,
		cpu0:   cpu,
		attrs:  append([]Attr(nil), attrs...),
	})
	id := SpanID(len(c.spans))
	if region != nil {
		if c.regions == nil {
			c.regions = map[SpanID]*rtrace.Region{}
		}
		c.regions[id] = region
	}
	c.mu.Unlock()
	return id
}

// EndSpan implements Recorder. Final attributes are appended; an
// AttrFailed attribute marks the span failed. Ending the zero id or an
// already-ended span is a no-op.
func (c *Collector) EndSpan(id SpanID, attrs ...Attr) {
	now := time.Now()
	cpu := processCPU()
	c.mu.Lock()
	if id == 0 || int(id) > len(c.spans) || c.spans[id-1].ended {
		c.mu.Unlock()
		return
	}
	s := &c.spans[id-1]
	s.ended = true
	s.wall = now.Sub(s.start)
	s.cpu = cpu - s.cpu0
	for _, a := range attrs {
		if a.Key == AttrFailed {
			s.failed = true
		}
		s.attrs = append(s.attrs, a)
	}
	region := c.regions[id]
	delete(c.regions, id)
	c.mu.Unlock()
	if region != nil {
		region.End()
	}
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) { c.reg.Count(name, delta) }

// Gauge implements Recorder.
func (c *Collector) Gauge(name string, v float64) { c.reg.Gauge(name, v) }

// Observe implements Recorder.
func (c *Collector) Observe(name string, v float64) { c.reg.Observe(name, v) }

// Metrics returns the collector's registry (live, not a copy).
func (c *Collector) Metrics() *Registry { return c.reg }

// Epoch returns the collector's creation time; exporters render span
// starts as offsets from it.
func (c *Collector) Epoch() time.Time { return c.epoch }

// Span is an exported copy of one recorded span.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	// Start is the span's start time. Exporters render it relative to the
	// collector's creation so runs are comparable.
	Start time.Time
	// Wall is the span's wall-clock duration; for a span still open at
	// snapshot time it is the duration so far.
	Wall time.Duration
	// CPU is the process CPU consumed while the span was open (see the
	// Collector doc for what that means under parallelism).
	CPU time.Duration
	// Ended reports the span was closed; an open span at snapshot time
	// (a crash that skipped cleanup) exports with Ended false.
	Ended bool
	// Failed reports the span ended with a Failed attribute.
	Failed bool
	Attrs  []Attr
}

// Attr returns the value of the first attribute with the given key, and
// whether it exists.
func (s Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Spans snapshots all recorded spans in start order (the order StartSpan
// was called). Open spans are included with Ended false and their
// duration so far.
func (c *Collector) Spans() []Span {
	now := time.Now()
	cpu := processCPU()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	for i := range c.spans {
		s := &c.spans[i]
		out[i] = Span{
			ID:     SpanID(i + 1),
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start,
			Wall:   s.wall,
			CPU:    s.cpu,
			Ended:  s.ended,
			Failed: s.failed,
			Attrs:  append([]Attr(nil), s.attrs...),
		}
		if !s.ended {
			out[i].Wall = now.Sub(s.start)
			out[i].CPU = cpu - s.cpu0
		}
	}
	return out
}
