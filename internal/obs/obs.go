// Package obs is the analysis pipeline's observability layer: hierarchical
// phase spans (wall + CPU time, parent links, per-span attributes), a
// metrics registry (counters, gauges, fixed-log-bucket histograms), and
// profiling hooks (runtime/pprof capture, runtime/trace regions mapped 1:1
// to spans).
//
// The package is dependency-free (standard library only) so every layer of
// the pipeline — the tracer, the finder, the constraint solver, the view
// cache — can emit into it without import cycles. Emission goes through
// the Recorder interface; the default is Nop, whose methods do nothing, so
// instrumented code pays one interface call (and can skip even attribute
// construction by checking Enabled) when observability is off. Collector
// is the real Recorder: it accumulates spans and metrics in memory, safe
// for concurrent use by the finder's matching workers, and exports them as
// a phase-tree text rendering, JSON, or Prometheus text format.
package obs

import (
	"strconv"
	"time"
)

// SpanID identifies one span within a Recorder. The zero SpanID means "no
// span": it is what Nop returns, and what a root span uses as its parent.
type SpanID uint64

// Attr is one key/value annotation on a span (sub-DDG size, solver
// verdict, iteration number, ...). Values are pre-rendered strings so the
// no-op path never formats anything — construct attrs behind Enabled when
// emitting from a hot path.
type Attr struct {
	Key, Val string
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// Dur builds a duration attribute.
func Dur(key string, d time.Duration) Attr { return Attr{Key: key, Val: d.String()} }

// AttrFailed is the attribute key marking a span failed. Ending a span
// with Failed(...) sets it; exporters render such spans with a "!" marker
// and Span.Failed reports it.
const AttrFailed = "failed"

// Failed builds the conventional failure attribute: a span that ended
// because its work panicked or errored, with the reason as the value.
func Failed(reason string) Attr { return Attr{Key: AttrFailed, Val: reason} }

// Recorder receives spans and metrics from instrumented code.
//
// Spans are hierarchical: StartSpan takes the parent's id (zero for a
// root) and returns the new span's id; EndSpan closes it, optionally
// attaching final attributes (outcome counts, verdicts). Start and End of
// one span must be called on the same goroutine — that is what lets a
// Collector mirror spans into runtime/trace regions — but different spans
// may start and end on different goroutines concurrently.
//
// Metrics are named cumulative instruments: Count adds to a counter,
// Gauge sets a last-value-wins gauge, Observe records one sample into a
// histogram with fixed log-scale buckets. Metric names may carry labels
// rendered by L ("name{k=\"v\"}").
//
// All methods must be safe for concurrent use.
type Recorder interface {
	// Enabled reports whether the recorder keeps anything. Hot paths check
	// it before building attributes or label strings, so a disabled
	// recorder costs one interface call and no allocation.
	Enabled() bool
	// StartSpan opens a span under parent (zero for a root span) and
	// returns its id. A disabled recorder returns zero.
	StartSpan(name string, parent SpanID, attrs ...Attr) SpanID
	// EndSpan closes the span, attaching any final attributes. Ending the
	// zero SpanID, or a span twice, is a no-op.
	EndSpan(id SpanID, attrs ...Attr)
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge.
	Gauge(name string, v float64)
	// Observe records one sample into the named histogram.
	Observe(name string, v float64)
}

// Nop is the disabled Recorder: every method does nothing, Enabled
// reports false, and StartSpan returns the zero SpanID. It is the value
// OrNop resolves nil to, so instrumented structs can hold a Recorder
// field that is never nil.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Enabled() bool                                { return false }
func (nopRecorder) StartSpan(string, SpanID, ...Attr) SpanID     { return 0 }
func (nopRecorder) EndSpan(SpanID, ...Attr)                      {}
func (nopRecorder) Count(string, int64)                          {}
func (nopRecorder) Gauge(string, float64)                        {}
func (nopRecorder) Observe(string, float64)                      {}

// OrNop resolves a possibly-nil Recorder to a usable one.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}
