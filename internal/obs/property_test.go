package obs

// Property-based tests over randomized span workloads and histogram
// inputs, run with several goroutines sharing one Recorder so `go test
// -race ./internal/obs` exercises the Collector's synchronization (the
// Makefile race target includes this package).
//
// Properties checked:
//   - span trees are well-formed: every started span appears exactly
//     once in the forest, every ended span has non-negative duration,
//     children nest inside their parents (start within the parent's
//     window; fully contained when ended before the parent), and no span
//     ends twice;
//   - histogram bucket counts sum to the observation total, and the sum
//     matches the observed samples.

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

const propGoroutines = 8

// randomSpanWorkload drives one goroutine's share of a workload: a
// random tree of spans, opened and closed stack-wise (as instrumented
// code does), with random attrs and occasional failures and metric
// emissions. Returns the number of spans it started.
func randomSpanWorkload(rec Recorder, rng *rand.Rand, depthBudget int) int {
	type frame struct{ id SpanID }
	var stack []frame
	started := 0
	ops := 50 + rng.Intn(150)
	for i := 0; i < ops; i++ {
		switch {
		case len(stack) == 0 || (rng.Intn(3) != 0 && len(stack) < depthBudget):
			parent := SpanID(0)
			if len(stack) > 0 {
				parent = stack[len(stack)-1].id
			}
			var attrs []Attr
			if rng.Intn(2) == 0 {
				attrs = append(attrs, Int("n", int64(rng.Intn(1000))))
			}
			id := rec.StartSpan("work", parent, attrs...)
			stack = append(stack, frame{id})
			started++
			if rng.Intn(4) == 0 {
				rec.Count("prop_ops_total", 1)
				rec.Observe("prop_sizes", float64(rng.Intn(4096)))
			}
		default:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rng.Intn(8) == 0 {
				rec.EndSpan(top.id, Failed("random failure"))
			} else {
				rec.EndSpan(top.id)
			}
		}
		if rng.Intn(16) == 0 {
			time.Sleep(time.Microsecond) // shuffle interleavings a little
		}
	}
	for len(stack) > 0 { // close everything stack-wise
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec.EndSpan(top.id)
	}
	return started
}

func TestPropertySpanTreesWellFormed(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		c := NewCollector()
		var wg sync.WaitGroup
		total := make([]int, propGoroutines)
		for g := 0; g < propGoroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*trial + g)))
				total[g] = randomSpanWorkload(c, rng, 6)
			}(g)
		}
		wg.Wait()

		want := 0
		for _, n := range total {
			want += n
		}
		spans := c.Spans()
		if len(spans) != want {
			t.Fatalf("trial %d: %d spans recorded, %d started", trial, len(spans), want)
		}

		byID := map[SpanID]Span{}
		for _, s := range spans {
			if _, dup := byID[s.ID]; dup {
				t.Fatalf("trial %d: duplicate span id %d", trial, s.ID)
			}
			byID[s.ID] = s
		}
		inTree := 0
		var walk func(n *TreeNode, parent SpanID)
		walk = func(n *TreeNode, parent SpanID) {
			inTree++
			s := n.Span
			if s.Parent != parent {
				t.Fatalf("trial %d: span %d under parent %d, recorded parent %d",
					trial, s.ID, parent, s.Parent)
			}
			if !s.Ended {
				t.Fatalf("trial %d: span %d never ended", trial, s.ID)
			}
			if s.Wall < 0 || s.CPU < 0 {
				t.Fatalf("trial %d: span %d negative duration wall=%v cpu=%v",
					trial, s.ID, s.Wall, s.CPU)
			}
			for _, child := range n.Children {
				cs := child.Span
				// Children nest inside their parents: started within the
				// parent's window, and (ended stack-wise before the
				// parent) finished by the parent's end.
				if cs.Start.Before(s.Start) {
					t.Fatalf("trial %d: child %d starts %v before parent %d",
						trial, cs.ID, s.Start.Sub(cs.Start), s.ID)
				}
				if cs.Start.Add(cs.Wall).After(s.Start.Add(s.Wall)) {
					t.Fatalf("trial %d: child %d ends after parent %d", trial, cs.ID, s.ID)
				}
				walk(child, s.ID)
			}
		}
		for _, root := range Tree(c) {
			walk(root, root.Span.Parent)
		}
		if inTree != len(spans) {
			t.Fatalf("trial %d: tree holds %d spans, recorded %d", trial, inTree, len(spans))
		}
	}
}

func TestPropertyHistogramTotals(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		c := NewCollector()
		var wg sync.WaitGroup
		sums := make([]float64, propGoroutines)
		counts := make([]uint64, propGoroutines)
		for g := 0; g < propGoroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(7000*trial + g)))
				n := 200 + rng.Intn(800)
				for i := 0; i < n; i++ {
					// Mix magnitudes across the whole bucket range,
					// including clamped extremes.
					v := rng.Float64() * float64(uint64(1)<<uint(rng.Intn(40)))
					if rng.Intn(50) == 0 {
						v = 0
					}
					if rng.Intn(50) == 0 {
						v = 1e30
					}
					c.Observe("h", v)
					sums[g] += v
					counts[g]++
				}
			}(g)
		}
		wg.Wait()

		var wantSum float64
		var wantCount uint64
		for g := range sums {
			wantSum += sums[g]
			wantCount += counts[g]
		}
		h := c.Metrics().Histograms()["h"]
		if h.Total != wantCount {
			t.Fatalf("trial %d: total %d, want %d", trial, h.Total, wantCount)
		}
		var bucketSum uint64
		for _, n := range h.Counts {
			bucketSum += n
		}
		if bucketSum != h.Total {
			t.Fatalf("trial %d: bucket counts sum to %d, total %d", trial, bucketSum, h.Total)
		}
		if diff := h.Sum - wantSum; diff > 1e-6*wantSum || diff < -1e-6*wantSum {
			t.Fatalf("trial %d: sum %v, want %v", trial, h.Sum, wantSum)
		}
	}
}

func TestPropertyCountersUnderContention(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const perG = 1000
	for g := 0; g < propGoroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Count("contended_total", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Metrics().Counters()["contended_total"]; got != propGoroutines*perG {
		t.Fatalf("counter = %d, want %d", got, propGoroutines*perG)
	}
}
