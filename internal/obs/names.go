package obs

// Canonical metric names emitted by the pipeline. Centralized so the
// emitting layers (tracer, finder, budget, cache) and the consumers
// (report exporters, tests, dashboards) agree on one namespace. Labeled
// variants are built with L, e.g. L(MetricSolverRuns, "kind", kind).
const (
	// Histograms.
	MetricSolveSeconds     = "discovery_solve_seconds"      // per solver-run latency
	MetricViewGroups       = "discovery_view_groups"        // group count per built view
	MetricTraceThreadNodes = "discovery_trace_thread_nodes" // traced nodes per VM thread
	MetricPrescreenSeconds = "discovery_prescreen_seconds"  // per-sub-DDG census latency

	// Counters (labeled with kind where noted).
	MetricSolverRuns      = "discovery_solver_runs_total"     // kind
	MetricSolverTimeouts  = "discovery_solver_timeouts_total" // kind
	MetricSolverRestarts  = "discovery_solver_restarts_total" // kind
	MetricSolverNogoods   = "discovery_solver_nogoods_total"  // kind
	MetricCacheHits       = "discovery_cache_hits_total"      // kind
	MetricCacheMisses     = "discovery_cache_misses_total"    // kind
	MetricCacheSkips      = "discovery_cache_skips_total"     // kind
	MetricPrescreenSkips  = "discovery_prescreen_skips_total" // kind; solves answered by the census
	MetricPrescreenChecks = "discovery_prescreen_checks_total"
	MetricTraceNodes      = "discovery_trace_nodes_total"
	MetricMatches         = "discovery_matches_total"

	// Gauges.
	MetricTraceThroughput = "discovery_trace_nodes_per_second"
	MetricPoolSize        = "discovery_pool_size"
	MetricCacheEntries    = "discovery_cache_entries"
	MetricIterations      = "discovery_find_iterations"
	MetricPatterns        = "discovery_patterns_total"

	// Online loop-iteration compaction (trace-time folding; see
	// ddg.LoopIterIndex). Gauges, recorded per traced run.
	MetricTraceIterIndexes = "discovery_trace_iter_indexes" // loops indexed online
	MetricTraceIterGroups  = "discovery_trace_iter_groups"  // dynamic iterations indexed

	// Out-of-core paged DDGs (ddg.SpillArcs). Counters unless noted.
	MetricDDGSpills                 = "discovery_ddg_spills_total"
	MetricDDGPageFaults             = "discovery_ddg_pages_faults_total"
	MetricDDGPageEvictions          = "discovery_ddg_pages_evictions_total"
	MetricDDGPagesSpilledBytes      = "discovery_ddg_pages_spilled_bytes"       // gauge
	MetricDDGPagesResidentBytes     = "discovery_ddg_pages_resident_bytes"      // gauge
	MetricDDGPagesPeakResidentBytes = "discovery_ddg_pages_peak_resident_bytes" // gauge

	// Analysis-server (cmd/server) metrics. Counters unless noted; the
	// requests counter is labeled with the terminal status of the request
	// (ok, rejected, invalid, error, cancelled).
	MetricServerRequests       = "discovery_server_requests_total" // status
	MetricServerStoreHits      = "discovery_server_store_hits_total"
	MetricServerStoreMisses    = "discovery_server_store_misses_total"
	MetricServerRequestSeconds = "discovery_server_request_seconds" // histogram
	MetricServerQueueSeconds   = "discovery_server_queue_seconds"   // histogram
	MetricServerQueueDepth     = "discovery_server_queue_depth"     // gauge
	MetricServerInFlight       = "discovery_server_in_flight"       // gauge

	// Fault-tolerant serving (resilient store + admission brownout).
	// Counters unless noted.
	MetricServerCancelled     = "discovery_server_requests_cancelled_total" // client gone while queued
	MetricServerStoreRetries  = "discovery_server_store_retries_total"
	MetricServerStoreFallback = "discovery_server_store_fallback_total" // ops absorbed by the memory spill
	MetricServerBreakerTrips  = "discovery_server_store_breaker_trips_total"
	MetricServerBreakerState  = "discovery_server_store_breaker_state" // gauge: 0 closed, 1 half-open, 2 open
	MetricServerBrownout      = "discovery_server_brownout_clamped_total"
	MetricServerPanics        = "discovery_server_panics_total" // worker-boundary recoveries

	// Shared solve scheduler (internal/sched). One pool serves every
	// concurrent run, so these are process-level series, not per-request.
	MetricSchedWorkers     = "discovery_sched_workers"       // gauge: pool goroutines
	MetricSchedQueueDepth  = "discovery_sched_queue_depth"   // gauge: submitted, unclaimed tasks
	MetricSchedTasks       = "discovery_sched_tasks_total"   // counter: tasks completed
	MetricSchedSteals      = "discovery_sched_steals_total"  // counter: worker switched owners
	MetricSchedExpired     = "discovery_sched_expired_total" // counter: dropped at claim time
	MetricSchedTaskSeconds = "discovery_sched_task_seconds"  // histogram: executed-task latency
)
