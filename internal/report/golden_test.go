package report

// Golden-output regression corpus: the canonical text and JSON reports of
// a default Find over every Starbench benchmark × version, checked in
// under testdata/golden/. The finder is deterministic for fixed options
// (node ids, iteration order, and pattern sets are reproducible; the
// cross-mode equivalence suite relies on the same property), so the
// reports must match byte-for-byte — any diff is a behavior change that
// needs either a fix or a deliberate `go test ./internal/report -update`
// with the diff reviewed like code.
//
// The one nondeterministic ingredient, solver wall time, leaks into the
// JSON through diagnostics "elapsed_ms"; it is normalized to 0 on both
// sides of the comparison.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"discovery/internal/core"
	"discovery/internal/starbench"
)

var update = flag.Bool("update", false, "rewrite the golden report corpus")

// elapsedRE matches the solver-stats wall-time field, the only timing
// value in the JSON export.
var elapsedRE = regexp.MustCompile(`"elapsed_ms": \d+`)

func normalizeJSON(data []byte) []byte {
	return elapsedRE.ReplaceAll(data, []byte(`"elapsed_ms": 0`))
}

func TestGoldenReports(t *testing.T) {
	for _, b := range starbench.All() {
		for _, v := range starbench.Versions() {
			b, v := b, v
			t.Run(b.Name+"/"+string(v), func(t *testing.T) {
				res, err := starbench.Evaluate(b, v, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				text := []byte(Text(res.Built.Prog, res.Finder))
				jsonData, err := JSON(res.Finder)
				if err != nil {
					t.Fatal(err)
				}
				jsonData = append(normalizeJSON(jsonData), '\n')

				base := fmt.Sprintf("%s_%s", b.Name, v)
				checkGolden(t, base+".txt", text)
				checkGolden(t, base+".json", jsonData)
			})
		}
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/report -update`): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output differs from golden file; diff the report, then "+
			"`go test ./internal/report -update` if the change is intended\n"+
			"got %d bytes, want %d bytes\nfirst divergence: %s",
			name, len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff locates the first differing byte and returns a short excerpt
// of both sides around it.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	excerpt := func(b []byte) string {
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return fmt.Sprintf("%q", b[lo:hi])
	}
	return fmt.Sprintf("byte %d\n  got:  %s\n  want: %s", i, excerpt(got), excerpt(want))
}
