package report

// Integration: generate the Figure 6-style report for every Starbench
// benchmark and version, and check that the final patterns annotate real
// listing lines — including at least one line inside each found expected
// pattern's anchor loop.

import (
	"strings"
	"testing"

	"discovery/internal/core"
	"discovery/internal/ddg"
	"discovery/internal/starbench"
)

func TestReportsForWholeSuite(t *testing.T) {
	for _, b := range starbench.All() {
		for _, v := range starbench.Versions() {
			b, v := b, v
			t.Run(b.Name+"/"+string(v), func(t *testing.T) {
				res, err := starbench.Evaluate(b, v, core.Options{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				prog := res.Built.Prog
				ann := Annotations(res.Finder.Graph, res.Finder.Patterns)

				// Every annotation points at an existing listing line.
				for file, lines := range ann {
					listing := prog.Listing(file)
					if len(listing) == 0 {
						t.Errorf("annotations for unknown file %q", file)
						continue
					}
					for line := range lines {
						if line < 1 || line > len(listing) {
							t.Errorf("annotation outside listing: %s:%d", file, line)
						}
					}
				}

				// The text and HTML reports render without missing parts.
				text := Text(prog, res.Finder)
				html := HTML(prog, res.Finder)
				for _, file := range prog.Files() {
					if !strings.Contains(text, "==== "+file) {
						t.Errorf("text report missing file %s", file)
					}
					if !strings.Contains(html, file) {
						t.Errorf("html report missing file %s", file)
					}
				}

				// Each found expected pattern's anchor loop carries
				// annotations in the final report, possibly under the
				// compound pattern that subsumed it (the paper's reports
				// point users at exactly these locations).
				if len(res.Finder.Patterns) > 0 && len(ann) == 0 {
					t.Error("patterns found but nothing annotated")
				}
				g := res.Finder.Graph
				for _, er := range res.Expectations {
					if !er.Found || er.Missed {
						continue
					}
					for _, anchor := range er.Anchors {
						loop := res.Built.Anchors[anchor]
						annotated := false
						for i := 0; i < g.NumNodes() && !annotated; i++ {
							u := g.ScopeOf(ddgNode(i))
							if u == nil || !u.Contains(loop) {
								continue
							}
							pos := g.Pos(ddgNode(i))
							if len(ann[pos.File][pos.Line]) > 0 {
								annotated = true
							}
						}
						if !annotated {
							t.Errorf("found %s at anchor %s has no annotated line", er.Label, anchor)
						}
					}
				}
			})
		}
	}
}

// ddgNode converts a loop index to a node id.
func ddgNode(i int) ddg.NodeID { return ddg.NodeID(i) }
