package report

// Paged variant of the golden corpus: the same Find over every benchmark ×
// version, but with a spill budget small enough that every non-trivial
// simplified graph pages its adjacency through an unlinked spill file.
// The reports must match the SAME golden files byte-for-byte — paging
// changes where bytes live, never what the finder reports. This is the
// corpus-level half of the out-of-core differential suite (the structural
// half lives in internal/trace and internal/ddg).

import (
	"fmt"
	"testing"

	"discovery/internal/core"
	"discovery/internal/starbench"
)

func TestGoldenReportsPaged(t *testing.T) {
	if *update {
		t.Skip("golden files are written by TestGoldenReports")
	}
	spillDir := t.TempDir()
	spilled := 0
	for _, b := range starbench.All() {
		for _, v := range starbench.Versions() {
			b, v := b, v
			t.Run(b.Name+"/"+string(v), func(t *testing.T) {
				res, err := starbench.Evaluate(b, v, core.Options{
					SpillBudget: 512, SpillDir: spillDir,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer res.Finder.Graph.CloseSpill()
				if res.Finder.Graph.Spilled() {
					spilled++
				}
				text := []byte(Text(res.Built.Prog, res.Finder))
				jsonData, err := JSON(res.Finder)
				if err != nil {
					t.Fatal(err)
				}
				jsonData = append(normalizeJSON(jsonData), '\n')

				base := fmt.Sprintf("%s_%s", b.Name, v)
				checkGolden(t, base+".txt", text)
				checkGolden(t, base+".json", jsonData)
			})
		}
	}
	if spilled == 0 {
		t.Error("no benchmark spilled under the 512-byte budget; the paged corpus tested nothing")
	}
}
