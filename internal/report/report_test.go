package report

import (
	"strings"
	"testing"

	"discovery/internal/core"
	"discovery/internal/mir"
	"discovery/internal/trace"
)

// tracedMapProgram builds and analyzes a tiny kernel with a known map.
func tracedMapProgram(t *testing.T) (*mir.Program, *core.Result) {
	t.Helper()
	p := mir.NewProgram("demo")
	p.DeclareStatic("in", 4)
	p.DeclareStatic("out", 4)
	p.DeclareStatic("sink", 4)
	f, b := p.NewFunc("main", "demo.c")
	b.For("i", mir.C(0), mir.C(4), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("in"), mir.V("i")), mir.FDiv(mir.I2F(mir.V("i")), mir.F(4)))
	})
	b.For("i", mir.C(0), mir.C(4), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("out"), mir.V("i")),
			mir.FMul(mir.Load(mir.Idx(mir.G("in"), mir.V("i"))), mir.F(3)))
	})
	b.For("i", mir.C(0), mir.C(4), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("sink"), mir.V("i")),
			mir.FSub(mir.Load(mir.Idx(mir.G("out"), mir.V("i"))), mir.F(1)))
	})
	b.Finish(f)
	res, err := trace.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, core.Find(res.Graph, core.Options{Workers: 1})
}

func TestAnnotations(t *testing.T) {
	p, res := tracedMapProgram(t)
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns found")
	}
	ann := Annotations(res.Graph, res.Patterns)
	if len(ann["demo.c"]) == 0 {
		t.Fatal("no annotated lines")
	}
	found := false
	for _, list := range ann["demo.c"] {
		for _, a := range list {
			if a.Kind == "map" && strings.Contains(a.Ops, "fmul") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("map annotation missing: %v", ann)
	}
	_ = p
}

func TestTextReport(t *testing.T) {
	p, res := tracedMapProgram(t)
	text := Text(p, res)
	for _, want := range []string{"==== demo.c", "for (i = 0; i < 4", "^ map"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestSummary(t *testing.T) {
	_, res := tracedMapProgram(t)
	s := Summary(res)
	for _, want := range []string{"DDG:", "patterns reported:", "map"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestHTMLReport(t *testing.T) {
	p, res := tracedMapProgram(t)
	h := HTML(p, res)
	for _, want := range []string{"<!DOCTYPE html>", "demo.c", `class="line hit"`, `class="ann"`} {
		if !strings.Contains(h, want) {
			t.Errorf("html report missing %q", want)
		}
	}
	if strings.Contains(h, "<script") {
		t.Error("unexpected script tag")
	}
}

func TestDedupe(t *testing.T) {
	a := Annotation{Kind: "map", Ops: "fmul"}
	b := Annotation{Kind: "map", Ops: "fadd"}
	out := dedupe([]Annotation{a, b, a, b, a})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d", len(out))
	}
	if out[0].Ops != "fadd" { // sorted
		t.Errorf("order: %v", out)
	}
}
