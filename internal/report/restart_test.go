package report

// End-to-end visibility of the solver restart counters: a Find run with
// SolverRestartSlice armed must surface restart and nogood counts in the
// JSON export and the Prometheus metrics, and the prescreen block must
// appear when asked for. (Defaults keep both at zero/absent — the golden
// corpus pins that.)

import (
	"strings"
	"testing"

	"discovery/internal/core"
	"discovery/internal/obs"
	"discovery/internal/starbench"
)

func TestRestartCountersSurface(t *testing.T) {
	b := starbench.ByName("ray-rot")
	col := obs.NewCollector()
	// A one-step slice forces a restart on any solve with real search; the
	// ray-rot tiled solves search hundreds of steps.
	ev, err := starbench.Evaluate(b, starbench.Pthreads, core.Options{
		SolverRestartSlice: 1, Obs: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ev.Finder
	var restarts, nogoods int64
	for _, ks := range res.SolverStats {
		restarts += ks.Restarts
		nogoods += ks.Nogoods
	}
	if restarts == 0 || nogoods == 0 {
		t.Fatalf("slice=1 run recorded %d restart(s), %d nogood(s); want both positive", restarts, nogoods)
	}

	data, err := JSONWith(res, JSONOptions{IncludePrescreenStats: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"restarts":`, `"nogoods":`, `"prescreen":`, `"checks":`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("JSON export missing %s:\n%s", field, data)
		}
	}

	metrics := PrometheusMetrics(col)
	for _, name := range []string{obs.MetricSolverRestarts, obs.MetricSolverNogoods} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metric %q missing from the Prometheus export", name)
		}
	}
}
