package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"discovery/internal/analysis"
	"discovery/internal/core"
	"discovery/internal/mir"
	"discovery/internal/patterns"
	"discovery/internal/trace"
)

// tracedSumProgram builds and analyzes a scalar accumulation whose
// reduction cross-check needs the constraint solver, under opts.
func tracedSumProgram(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	p := mir.NewProgram("sum")
	p.DeclareStatic("xs", 6)
	p.DeclareStatic("out", 1)
	f, b := p.NewFunc("main", "sum.c")
	b.For("i", mir.C(0), mir.C(6), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("xs"), mir.V("i")), mir.I2F(mir.V("i")))
	})
	b.Assign("acc", mir.F(0))
	b.For("i", mir.C(0), mir.C(6), mir.C(1), func(b *mir.Block) {
		b.Assign("acc", mir.FAdd(mir.V("acc"), mir.Load(mir.Idx(mir.G("xs"), mir.V("i")))))
	})
	b.Store(mir.Idx(mir.G("out"), mir.C(0)), mir.V("acc"))
	b.Finish(f)
	res, err := trace.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return core.Find(res.Graph, opts)
}

// TestSummaryDiagnosticsOnlyWhenDegraded: the acceptance invariant — clean
// runs render exactly the pre-budget summary, limited runs grow a labeled
// diagnostics section (this is what cmd/discovery prints).
func TestSummaryDiagnosticsOnlyWhenDegraded(t *testing.T) {
	clean := tracedSumProgram(t, core.Options{Workers: 1, VerifyMatches: true})
	if clean.Degraded() {
		t.Fatal("unbudgeted run is degraded")
	}
	if s := Summary(clean); strings.Contains(s, "resource limits") {
		t.Errorf("clean summary mentions resource limits:\n%s", s)
	}

	limited := tracedSumProgram(t, core.Options{
		Workers: 1, VerifyMatches: true, SolverStepLimit: 1,
	})
	if limited.TimedOutViews == 0 {
		t.Fatal("step-limited run reported no timed-out views")
	}
	s := Summary(limited)
	for _, want := range []string{
		"resource limits hit",
		"undecided within the solver budget",
		"solver effort per pattern kind",
		"linear reduction",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("degraded summary missing %q:\n%s", want, s)
		}
	}
}

func TestDiagnosticsInterrupted(t *testing.T) {
	res := &core.Result{Interrupted: true}
	if s := Diagnostics(res); !strings.Contains(s, "interrupted") {
		t.Errorf("interrupted diagnostics = %q", s)
	}
}

func TestJSONExport(t *testing.T) {
	res := tracedSumProgram(t, core.Options{
		Workers: 1, VerifyMatches: true, SolverStepLimit: 1,
	})
	data, err := JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	if !got.Diagnostics.Degraded || got.Diagnostics.TimedOutViews != res.TimedOutViews {
		t.Errorf("diagnostics = %+v, want degraded with %d timed-out views",
			got.Diagnostics, res.TimedOutViews)
	}
	ks, ok := got.Diagnostics.Solver["linear_reduction"]
	if !ok || ks.Runs == 0 || ks.Timeouts == 0 {
		t.Errorf("solver rollup = %+v, want limited linear_reduction runs", got.Diagnostics.Solver)
	}
	if got.SimplifiedNodes != res.SimplifiedNodes || got.Patterns == nil {
		t.Errorf("summary fields missing: %+v", got)
	}
}

// TestDiagnosticsRendersFailures: contained failures make a run degraded
// and show up in both the text section and the JSON export.
func TestDiagnosticsRendersFailures(t *testing.T) {
	res := &core.Result{Failures: []*analysis.Error{
		analysis.Errorf(analysis.StageMatch, analysis.Internal, "merge phase failed"),
		analysis.Errorf(analysis.StageTrace, analysis.ResourceExhausted, "trace truncated"),
	}}
	if !res.Degraded() {
		t.Fatal("a result with contained failures is not degraded")
	}
	s := Diagnostics(res)
	for _, want := range []string{"contained failure", "merge phase failed", "trace truncated"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, s)
		}
	}
	data, err := JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Diagnostics.Failures) != 2 {
		t.Fatalf("JSON failures = %+v, want 2 entries", got.Diagnostics.Failures)
	}
	if got.Diagnostics.Failures[0].Stage != "match" || got.Diagnostics.Failures[0].Kind != "internal error" {
		t.Errorf("first failure misclassified: %+v", got.Diagnostics.Failures[0])
	}
	if !got.Diagnostics.Degraded {
		t.Error("JSON export not marked degraded")
	}
}

// TestKindStatsElapsedMS pins the elapsed unit in the export.
func TestKindStatsElapsedMS(t *testing.T) {
	res := &core.Result{
		TimedOutViews: 1,
		SolverStats: map[patterns.Kind]patterns.KindStats{
			patterns.KindLinearReduction: {Runs: 1, Timeouts: 1, Elapsed: 1500 * time.Millisecond},
		},
	}
	data, err := JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if ms := got.Diagnostics.Solver["linear_reduction"].ElapsedMS; ms != 1500 {
		t.Errorf("elapsed_ms = %d, want 1500", ms)
	}
}

// TestJSONCacheBlockExplicit: a consumer passing IncludeCacheStats gets
// the "cache" block even when the run recorded no cache activity (cache
// disabled), as explicit zeros — absent only in the default export, where
// omitting it keeps old outputs byte-identical.
func TestJSONCacheBlockExplicit(t *testing.T) {
	res := tracedSumProgram(t, core.Options{Workers: 1, DisableCache: true})
	if h, m, s := res.CacheStats(); h+m+s != 0 {
		t.Fatalf("cache-disabled run recorded cache activity: %d/%d/%d", h, m, s)
	}

	data, err := JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"cache"`) {
		t.Errorf("default export emits a cache block for a cache-less run:\n%s", data)
	}

	data, err = JSONWith(res, JSONOptions{IncludeCacheStats: true})
	if err != nil {
		t.Fatal(err)
	}
	var got SummaryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Diagnostics.Cache == nil {
		t.Fatal("IncludeCacheStats did not emit the cache block")
	}
	if *got.Diagnostics.Cache != (CacheJSON{}) {
		t.Errorf("cache block = %+v, want explicit zeros", *got.Diagnostics.Cache)
	}

	// With the cache on, both exports agree and carry the real counts.
	res = tracedSumProgram(t, core.Options{Workers: 1})
	hits, misses, skips := res.CacheStats()
	if hits+misses+skips == 0 {
		t.Fatal("cache-enabled run recorded no cache activity")
	}
	data, err = JSONWith(res, JSONOptions{IncludeCacheStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := CacheJSON{Hits: hits, Misses: misses, Skips: skips}
	if got.Diagnostics.Cache == nil || *got.Diagnostics.Cache != want {
		t.Errorf("cache block = %+v, want %+v", got.Diagnostics.Cache, want)
	}
}
