package report

// Diagnostics rendering and the machine-readable summary. The paper's
// evaluation reports which solver runs were resource-limited (Table 3);
// this file surfaces the equivalent for a finder run: whether the global
// budget interrupted it, how many views were undecided within the solver
// budget, and the per-kind solver effort rollup. The text section renders
// only for degraded runs so default (unbudgeted) outputs stay byte-for-byte
// what they were before budgets existed.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"discovery/internal/core"
	"discovery/internal/patterns"
)

// Diagnostics renders the resource-limit section of a result: why the
// pattern set is a lower bound, and what the solver spent. Returns "" for a
// run that no bound cut short.
func Diagnostics(res *core.Result) string {
	if !res.Degraded() {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("resource limits hit; the pattern set is a lower bound:\n")
	if res.Interrupted {
		sb.WriteString("  - interrupted: global budget or context expired before the fixpoint\n")
	}
	if res.TimedOutViews > 0 {
		fmt.Fprintf(&sb, "  - %d view(s) undecided within the solver budget (not \"no pattern\")\n",
			res.TimedOutViews)
	}
	if res.SkippedViews > 0 {
		fmt.Fprintf(&sb, "  - %d view(s) skipped for exceeding the view size limit\n",
			res.SkippedViews)
	}
	if res.PoolLimited {
		sb.WriteString("  - sub-DDG pool hit its size limit; some subtractions/fusions dropped\n")
	}
	for _, f := range res.Failures {
		fmt.Fprintf(&sb, "  - contained failure: %v\n", f)
	}
	if line := CacheStats(res); line != "" {
		sb.WriteString("  " + line + "\n")
	}
	if line := PrescreenStats(res); line != "" {
		sb.WriteString("  " + line + "\n")
	}
	sb.WriteString(solverEffort(res))
	return sb.String()
}

// PrescreenStats renders a one-line structural-prescreen summary ("" when
// the run ran no prescreen checks, e.g. under -no-prescreen).
func PrescreenStats(res *core.Result) string {
	checks, skips := res.PrescreenStats()
	if checks == 0 {
		return ""
	}
	return fmt.Sprintf("prescreen: %d check(s), %d solve(s) skipped", checks, skips)
}

// CacheStats renders a one-line view-cache summary ("" when the run
// recorded no cache activity, e.g. under -no-cache).
func CacheStats(res *core.Result) string {
	hits, misses, skips := res.CacheStats()
	if hits+misses+skips == 0 {
		return ""
	}
	return fmt.Sprintf("view cache: %d hit(s), %d miss(es), %d skip(s)", hits, misses, skips)
}

// solverEffort renders the per-kind solver rollup lines.
func solverEffort(res *core.Result) string {
	if len(res.SolverStats) == 0 {
		return ""
	}
	kinds := make([]patterns.Kind, 0, len(res.SolverStats))
	for k := range res.SolverStats {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var sb strings.Builder
	sb.WriteString("solver effort per pattern kind:\n")
	for _, k := range kinds {
		ks := res.SolverStats[k]
		fmt.Fprintf(&sb, "  %-22s %d run(s), %d timed out; %d nodes, %d propagations, %d solutions in %v",
			k, ks.Runs, ks.Timeouts, ks.Nodes, ks.Propagations, ks.Solutions,
			ks.Elapsed.Round(time.Millisecond))
		if ks.Restarts > 0 || ks.Nogoods > 0 {
			fmt.Fprintf(&sb, "; %d restart(s), %d nogood(s)", ks.Restarts, ks.Nogoods)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// PatternJSON is one reported pattern in the machine-readable summary.
type PatternJSON struct {
	Kind  string `json:"kind"`
	Nodes int    `json:"nodes"`
	Ops   string `json:"ops"`
}

// KindStatsJSON is the solver effort attributed to one pattern kind.
type KindStatsJSON struct {
	Runs         int   `json:"runs"`
	Timeouts     int   `json:"timeouts"`
	Nodes        int64 `json:"nodes"`
	Failures     int64 `json:"failures"`
	Propagations int64 `json:"propagations"`
	Solutions    int64 `json:"solutions"`
	ElapsedMS    int64 `json:"elapsed_ms"`
	CacheHits    int   `json:"cache_hits,omitempty"`
	CacheMisses  int   `json:"cache_misses,omitempty"`
	CacheSkips   int   `json:"cache_skips,omitempty"`
	// Restarts/Nogoods stay zero unless solver restarts are enabled
	// (-solver-restarts), so default outputs are unchanged.
	Restarts int64 `json:"restarts,omitempty"`
	Nogoods  int64 `json:"nogoods,omitempty"`
}

// CacheJSON is the view-cache rollup across all pattern kinds.
type CacheJSON struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Skips  int `json:"skips"`
}

// PrescreenJSON is the structural-prescreen rollup: census runs and the
// solves they answered without a matcher run.
type PrescreenJSON struct {
	Checks int `json:"checks"`
	Skips  int `json:"skips"`
}

// FailureJSON is one contained failure (a recovered panic or typed error)
// in the machine-readable summary.
type FailureJSON struct {
	Stage   string `json:"stage"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// DiagnosticsJSON describes the resource-limit outcome of a run.
type DiagnosticsJSON struct {
	Degraded      bool                     `json:"degraded"`
	Interrupted   bool                     `json:"interrupted"`
	TimedOutViews int                      `json:"timed_out_views"`
	SkippedViews  int                      `json:"skipped_views"`
	PoolLimited   bool                     `json:"pool_limited"`
	Failures      []FailureJSON            `json:"failures,omitempty"`
	Solver        map[string]KindStatsJSON `json:"solver,omitempty"`
	Cache         *CacheJSON               `json:"cache,omitempty"`
	// Prescreen is emitted only on request (IncludePrescreenStats): the
	// prescreen answers solves on every default run, so an unconditional
	// block would churn every existing consumer's output.
	Prescreen *PrescreenJSON `json:"prescreen,omitempty"`
}

// SummaryJSON is the machine-readable counterpart of Summary.
type SummaryJSON struct {
	OriginalNodes   int             `json:"original_nodes"`
	SimplifiedNodes int             `json:"simplified_nodes"`
	Iterations      int             `json:"iterations"`
	PoolSize        int             `json:"pool_size"`
	Matches         int             `json:"matches"`
	Patterns        []PatternJSON   `json:"patterns"`
	Diagnostics     DiagnosticsJSON `json:"diagnostics"`
}

// JSONOptions adjusts what JSONWith includes beyond the defaults.
type JSONOptions struct {
	// IncludeCacheStats forces the diagnostics "cache" block even when the
	// run recorded no cache activity, as an explicit zeroed block. Without
	// it a consumer asking for cache stats on a cache-disabled run saw the
	// field silently vanish — indistinguishable from an old producer that
	// never emitted it.
	IncludeCacheStats bool
	// IncludePrescreenStats adds the diagnostics "prescreen" block
	// (checks and skipped solves). Off by default to keep existing
	// outputs byte-identical.
	IncludePrescreenStats bool
}

// JSON exports a finder result as an indented JSON document, diagnostics
// included (always, even when clean — consumers branch on "degraded").
func JSON(res *core.Result) ([]byte, error) {
	return JSONWith(res, JSONOptions{})
}

// JSONWith is JSON with explicit options.
func JSONWith(res *core.Result, opts JSONOptions) ([]byte, error) {
	out := SummaryJSON{
		OriginalNodes:   res.OriginalNodes,
		SimplifiedNodes: res.SimplifiedNodes,
		Iterations:      res.Iterations,
		PoolSize:        res.PoolSize,
		Matches:         len(res.Matches),
		Patterns:        []PatternJSON{},
		Diagnostics: DiagnosticsJSON{
			Degraded:      res.Degraded(),
			Interrupted:   res.Interrupted,
			TimedOutViews: res.TimedOutViews,
			SkippedViews:  res.SkippedViews,
			PoolLimited:   res.PoolLimited,
		},
	}
	for _, f := range res.Failures {
		out.Diagnostics.Failures = append(out.Diagnostics.Failures, FailureJSON{
			Stage:   f.Stage.String(),
			Kind:    f.Kind.String(),
			Message: f.Error(),
		})
	}
	for _, p := range res.Patterns {
		out.Patterns = append(out.Patterns, PatternJSON{
			Kind:  kindSlug(p.Kind),
			Nodes: p.Nodes().Len(),
			Ops:   p.OpsSummary(res.Graph),
		})
	}
	if len(res.SolverStats) > 0 {
		out.Diagnostics.Solver = map[string]KindStatsJSON{}
		for k, ks := range res.SolverStats {
			out.Diagnostics.Solver[kindSlug(k)] = KindStatsJSON{
				Runs: ks.Runs, Timeouts: ks.Timeouts,
				Nodes: ks.Nodes, Failures: ks.Failures,
				Propagations: ks.Propagations, Solutions: ks.Solutions,
				ElapsedMS:   ks.Elapsed.Milliseconds(),
				CacheHits:   ks.CacheHits,
				CacheMisses: ks.CacheMisses,
				CacheSkips:  ks.CacheSkips,
				Restarts:    ks.Restarts,
				Nogoods:     ks.Nogoods,
			}
		}
	}
	if hits, misses, skips := res.CacheStats(); hits+misses+skips > 0 || opts.IncludeCacheStats {
		out.Diagnostics.Cache = &CacheJSON{Hits: hits, Misses: misses, Skips: skips}
	}
	if opts.IncludePrescreenStats {
		checks, skips := res.PrescreenStats()
		out.Diagnostics.Prescreen = &PrescreenJSON{Checks: checks, Skips: skips}
	}
	return json.MarshalIndent(out, "", "  ")
}
