// Package report renders pattern finding results against the analyzed
// program's source listing, in the style of the paper's Figure 6 reports:
// each line covered by a found pattern is annotated with the pattern kind
// and the operations involved (e.g. "tiled_map_reduction fadd,fmul").
// Text and HTML renderers are provided.
package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"discovery/internal/core"
	"discovery/internal/ddg"
	"discovery/internal/mir"
	"discovery/internal/patterns"
)

// Annotation marks one pattern's presence on one source line.
type Annotation struct {
	Kind string // e.g. "tiled_map_reduction"
	Ops  string // e.g. "fadd,fmul"
}

func (a Annotation) String() string { return a.Kind + " " + a.Ops }

// kindSlug converts a pattern kind to the snake_case label used in the
// paper's reports.
func kindSlug(k patterns.Kind) string {
	return strings.ReplaceAll(k.String(), " ", "_")
}

// Annotations maps file -> line -> annotations for the final patterns of a
// finder result.
func Annotations(g *ddg.Graph, pats []*patterns.Pattern) map[string]map[int][]Annotation {
	out := map[string]map[int][]Annotation{}
	for _, p := range pats {
		ann := Annotation{Kind: kindSlug(p.Kind), Ops: p.OpsSummary(g)}
		for _, pos := range p.Positions(g) {
			if !pos.Valid() {
				continue
			}
			if out[pos.File] == nil {
				out[pos.File] = map[int][]Annotation{}
			}
			out[pos.File][pos.Line] = append(out[pos.File][pos.Line], ann)
		}
	}
	return out
}

// Text renders the annotated source listing of the program.
func Text(prog *mir.Program, res *core.Result) string {
	ann := Annotations(res.Graph, res.Patterns)
	var sb strings.Builder
	for _, file := range prog.Files() {
		fmt.Fprintf(&sb, "==== %s\n", file)
		for i, line := range prog.Listing(file) {
			fmt.Fprintf(&sb, "%4d  %s\n", i+1, line)
			for _, a := range dedupe(ann[file][i+1]) {
				fmt.Fprintf(&sb, "      ^ %s\n", a)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary renders a one-line-per-pattern overview of a finder result. For
// runs cut short by a resource bound the Diagnostics section is appended;
// unbounded runs render exactly as before budgets existed.
func Summary(res *core.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DDG: %d nodes traced, %d after simplification (%.2fx)\n",
		res.OriginalNodes, res.SimplifiedNodes,
		float64(res.OriginalNodes)/float64(max(1, res.SimplifiedNodes)))
	fmt.Fprintf(&sb, "iterations: %d, sub-DDG pool: %d, matches: %d\n",
		res.Iterations, res.PoolSize, len(res.Matches))
	fmt.Fprintf(&sb, "patterns reported: %d\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Fprintf(&sb, "  - %s over %d nodes (%s)\n",
			p.Kind, p.Nodes().Len(), p.OpsSummary(res.Graph))
	}
	sb.WriteString(Diagnostics(res))
	return sb.String()
}

// HTML renders the annotated listing as a standalone HTML document with
// highlighted pattern lines, as the paper's implementation outputs.
func HTML(prog *mir.Program, res *core.Result) string {
	ann := Annotations(res.Graph, res.Patterns)
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>pattern report</title>
<style>
body { font-family: monospace; background: #fff; }
.line { white-space: pre; }
.hit { background: #e8e8e8; }
.ann { color: #802020; font-weight: bold; padding-left: 4em; }
h2 { font-family: sans-serif; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h2>%s</h2>\n", html.EscapeString(prog.Name))
	for _, file := range prog.Files() {
		fmt.Fprintf(&sb, "<h2>%s</h2>\n<div>\n", html.EscapeString(file))
		for i, line := range prog.Listing(file) {
			annotations := dedupe(ann[file][i+1])
			class := "line"
			if len(annotations) > 0 {
				class = "line hit"
			}
			fmt.Fprintf(&sb, `<div class=%q>%4d  %s</div>`+"\n",
				class, i+1, html.EscapeString(line))
			for _, a := range annotations {
				fmt.Fprintf(&sb, `<div class="ann">%s</div>`+"\n", html.EscapeString(a.String()))
			}
		}
		sb.WriteString("</div>\n")
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// dedupe removes duplicate annotations, keeping a deterministic order.
func dedupe(list []Annotation) []Annotation {
	seen := map[Annotation]bool{}
	var out []Annotation
	for _, a := range list {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Ops < out[j].Ops
	})
	return out
}
