package report

// Observability exports. The report package is the single place callers
// render analysis output, so the obs collector's three export formats —
// the human-readable phase tree, the JSON document, and the Prometheus
// text format — are surfaced here next to the result renderers. The
// functions are thin by design: the formats live in internal/obs and are
// tested there; report owns only the presentation entry points the CLIs
// call.

import (
	"discovery/internal/obs"
)

// PhaseTree renders the collector's span forest as an indented tree, one
// line per phase with wall/CPU time and attributes. maxChildren caps the
// children rendered per node (0 = default, negative = unlimited); the cap
// keeps solve-heavy match phases readable.
func PhaseTree(c *obs.Collector, maxChildren int) string {
	return obs.RenderTree(c, obs.RenderOptions{MaxChildren: maxChildren})
}

// PrometheusMetrics renders the collector's metrics in the Prometheus
// text exposition format.
func PrometheusMetrics(c *obs.Collector) string {
	return obs.Prometheus(c.Metrics())
}

// ObservabilityJSON exports the collector — spans and metrics — as one
// indented JSON document.
func ObservabilityJSON(c *obs.Collector) ([]byte, error) {
	return obs.JSON(c)
}
