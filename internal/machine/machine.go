// Package machine models the two evaluation architectures of the paper's
// portability study (§6.3): a CPU-centric machine (12-core Intel Xeon
// E5-2680 v3 with a low-end NVIDIA NVS 310) and a GPU-centric machine
// (4-core Intel Core i7-4770 with a high-end NVIDIA GeForce GTX Titan).
//
// Absolute hardware timings are obviously not reproducible on arbitrary
// hosts, so the study runs against a deterministic analytic cost model: a
// kernel is characterized by its element count, arithmetic intensity, and
// memory traffic, and each device converts that into simulated seconds.
// The model is calibrated so that the *shape* of the paper's Figure 8 —
// who wins on which machine, and by roughly what factor — is reproduced;
// the real computations still execute (on the host) for correctness.
package machine

import "fmt"

// GPUSpec describes a GPU device for the cost model.
type GPUSpec struct {
	Name string
	// Throughput is the effective compute rate in work units per second
	// for a fully utilized device.
	Throughput float64
	// TransferRate is the host-device copy bandwidth in data units/s.
	TransferRate float64
	// LegacyOccupancy is the utilization achieved by kernels hand-tuned
	// for a GTX 280-era device (the Rodinia CUDA port of §6.3): block
	// sizes and memory layouts tuned for 2008 hardware map well onto the
	// low-end NVS 310 but poorly onto the much wider GTX Titan, which is
	// the paper's explanation for Rodinia's limited speedup there.
	LegacyOccupancy float64
}

// Architecture is one evaluation machine.
type Architecture struct {
	Name string
	// CPUCores is the number of CPU cores.
	CPUCores int
	// CoreThroughput is the per-core compute rate in work units/s.
	CoreThroughput float64
	// GPU is the machine's GPU.
	GPU GPUSpec
}

// CPUCentric returns the paper's CPU-centric machine: many fast cores,
// weak GPU.
func CPUCentric() *Architecture {
	return &Architecture{
		Name:           "CPU-centric (12-core Xeon E5-2680 v3, NVS 310)",
		CPUCores:       12,
		CoreThroughput: 1.0,
		GPU: GPUSpec{
			Name:            "NVS 310",
			Throughput:      3.4,
			TransferRate:    40,
			LegacyOccupancy: 0.9,
		},
	}
}

// GPUCentric returns the paper's GPU-centric machine: few (faster) cores,
// powerful GPU.
func GPUCentric() *Architecture {
	return &Architecture{
		Name:           "GPU-centric (4-core i7-4770, GTX Titan)",
		CPUCores:       4,
		CoreThroughput: 1.27,
		GPU: GPUSpec{
			Name:            "GTX Titan",
			Throughput:      26.0,
			TransferRate:    160,
			LegacyOccupancy: 0.33,
		},
	}
}

// Workload characterizes one data-parallel kernel invocation for the cost
// model.
type Workload struct {
	// Elements is the number of independent work items.
	Elements int
	// WorkPerElement is the computational work per item (arbitrary units;
	// 1.0 equals one unit of a reference core's throughput).
	WorkPerElement float64
	// BytesPerElement is the host-device traffic per item, charged only
	// when a kernel runs on the GPU.
	BytesPerElement float64
}

// Work returns the total computational work of the workload.
func (w Workload) Work() float64 {
	return float64(w.Elements) * w.WorkPerElement
}

// SeqTime returns the simulated sequential execution time on this
// machine's CPU.
func (a *Architecture) SeqTime(w Workload) float64 {
	return w.Work() / a.CoreThroughput
}

// Fixed per-invocation costs, in the same time units the throughputs
// define. They make tiny kernels run sequentially (as real skeleton
// runtimes do) and are negligible at the reference workload scale.
const (
	// cpuDispatchOverhead is the thread-pool fork/join cost.
	cpuDispatchOverhead = 2000
	// gpuLaunchOverhead is the kernel launch and driver cost.
	gpuLaunchOverhead = 5000
)

// CPUTime returns the simulated multi-threaded CPU time with the given
// parallel efficiency (synchronization and load-imbalance losses).
func (a *Architecture) CPUTime(w Workload, threads int, efficiency float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > a.CPUCores {
		threads = a.CPUCores
	}
	return cpuDispatchOverhead + w.Work()/(float64(threads)*a.CoreThroughput*efficiency)
}

// GPUTime returns the simulated GPU time: launch cost plus host-device
// transfers plus kernel execution at the given occupancy (1.0 = code
// fully tuned for this device).
func (a *Architecture) GPUTime(w Workload, occupancy float64) float64 {
	transfer := float64(w.Elements) * w.BytesPerElement / a.GPU.TransferRate
	compute := w.Work() / (a.GPU.Throughput * occupancy)
	return gpuLaunchOverhead + transfer + compute
}

func (a *Architecture) String() string { return a.Name }

// Validate sanity-checks an architecture description.
func (a *Architecture) Validate() error {
	if a.CPUCores < 1 || a.CoreThroughput <= 0 {
		return fmt.Errorf("machine: invalid CPU description for %s", a.Name)
	}
	if a.GPU.Throughput <= 0 || a.GPU.TransferRate <= 0 {
		return fmt.Errorf("machine: invalid GPU description for %s", a.Name)
	}
	return nil
}
