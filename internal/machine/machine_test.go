package machine

import "testing"

func TestArchitecturesValidate(t *testing.T) {
	for _, a := range []*Architecture{CPUCentric(), GPUCentric()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.String() == "" {
			t.Error("empty name")
		}
	}
	bad := &Architecture{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Error("invalid architecture accepted")
	}
}

func TestWorkloadWork(t *testing.T) {
	w := Workload{Elements: 10, WorkPerElement: 2.5}
	if w.Work() != 25 {
		t.Errorf("Work = %g", w.Work())
	}
}

func TestCPUTimeScaling(t *testing.T) {
	a := CPUCentric()
	w := Workload{Elements: 1000000, WorkPerElement: 10}
	seq := a.SeqTime(w)
	par := a.CPUTime(w, 12, 1.0)
	if par >= seq {
		t.Error("parallel not faster than sequential")
	}
	// Dispatch overhead keeps the speedup just shy of ideal.
	if got := seq / par; got < 11.9 || got > 12 {
		t.Errorf("12-core speedup = %g, want just below 12", got)
	}
	// Threads are capped at the core count.
	if a.CPUTime(w, 100, 1.0) != par {
		t.Error("thread count not capped at cores")
	}
	// Zero threads clamp to one.
	if a.CPUTime(w, 0, 1.0) != a.CPUTime(w, 1, 1.0) {
		t.Error("zero threads should clamp to one")
	}
	// Efficiency slows things down.
	if a.CPUTime(w, 12, 0.5) <= par {
		t.Error("efficiency not applied")
	}
	// Tiny workloads are not worth dispatching.
	tiny := Workload{Elements: 4, WorkPerElement: 1}
	if a.CPUTime(tiny, 12, 1.0) <= a.SeqTime(tiny) {
		t.Error("dispatch overhead missing for tiny workloads")
	}
}

func TestGPUTimeComponents(t *testing.T) {
	a := GPUCentric()
	compute := Workload{Elements: 1000, WorkPerElement: 100, BytesPerElement: 0}
	transfer := Workload{Elements: 1000, WorkPerElement: 0, BytesPerElement: 1000}
	if a.GPUTime(compute, 1.0) <= 0 || a.GPUTime(transfer, 1.0) <= 0 {
		t.Error("GPU time must be positive")
	}
	// Halving occupancy doubles compute time but not launch/transfers.
	full := a.GPUTime(compute, 1.0)
	half := a.GPUTime(compute, 0.5)
	if half <= full {
		t.Errorf("occupancy scaling: full=%g half=%g", full, half)
	}
	tFull := a.GPUTime(transfer, 1.0)
	if a.GPUTime(transfer, 0.5) != tFull {
		t.Error("occupancy must not affect transfers")
	}
}

// TestFigure8Calibration checks the relative machine characteristics that
// Figure 8's shape depends on: the GPU-centric machine has fewer but
// faster cores and a far stronger GPU; the CPU-centric machine wins on
// threads.
func TestFigure8Calibration(t *testing.T) {
	c, g := CPUCentric(), GPUCentric()
	if c.CPUCores <= g.CPUCores {
		t.Error("CPU-centric machine should have more cores")
	}
	if g.CoreThroughput <= c.CoreThroughput {
		t.Error("GPU-centric cores should be individually faster")
	}
	if g.GPU.Throughput <= c.GPU.Throughput {
		t.Error("GPU-centric GPU should be stronger")
	}
	w := Workload{Elements: 200000, WorkPerElement: 128, BytesPerElement: 512}
	// On the CPU-centric machine the CPU beats its weak GPU...
	if c.CPUTime(w, c.CPUCores, 0.8) >= c.GPUTime(w, 1.0) {
		t.Error("CPU-centric: CPU should beat the NVS 310")
	}
	// ...and on the GPU-centric machine the GPU wins.
	if g.GPUTime(w, 1.0) >= g.CPUTime(w, g.CPUCores, 0.8) {
		t.Error("GPU-centric: the Titan should beat 4 cores")
	}
}
