// Package vm executes MIR programs on a shared-memory virtual machine with
// real (goroutine-backed) threads, barriers, and mutexes.
//
// The machine plays the role of the instrumented binary in the paper's
// Figure 1: a Tracer observes every operation execution, every shadow
// memory update, and the dynamic loop scope in which each operation runs.
// With a nil tracer the machine is a plain interpreter, used to validate
// benchmark kernels at reference scale.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"discovery/internal/analysis"
	"discovery/internal/ddg"
	"discovery/internal/mir"
	"discovery/internal/pagetab"
)

// Tracer observes an instrumented execution. The machine asks it for one
// ThreadTracer per VM thread at thread registration; all per-operation
// tracing then goes through that handle, so a tracer can keep unshared
// per-thread state on the hot path (the trace package records into
// per-thread append-only buffers and merges them after the run).
type Tracer interface {
	// ThreadTracer returns the tracing handle for the given VM thread. It
	// is called once per thread, from the thread that spawns it; the
	// returned handle is used only by the registered thread.
	ThreadTracer(thread int32) ThreadTracer
}

// ThreadTracer observes the operations of one VM thread. The shadow
// memory behind LoadShadow/StoreShadow is shared between all threads of a
// tracer; implementations synchronize those accesses the same way the
// traced program synchronizes the underlying memory (the analogue of the
// paper's synchronized shadow memory, §3).
type ThreadTracer interface {
	// Node records the execution of an operation, returning the new node
	// id. Operand ids may be ddg.NoNode for constant or untraced inputs.
	Node(op mir.Op, pos mir.Pos, scope *ddg.Scope, operands ...ddg.NodeID) ddg.NodeID
	// LoadShadow returns the node that defined the value at addr, or
	// ddg.NoNode if the location was never traced.
	LoadShadow(addr int64) ddg.NodeID
	// StoreShadow records that the value at addr was defined by def.
	StoreShadow(addr int64, def ddg.NodeID)
}

// Machine executes one program. A Machine is single-use: create, Run,
// inspect.
type Machine struct {
	prog   *mir.Program
	tracer Tracer

	// The heap is a paged flat address space: loads and stores of mapped
	// cells are lock-free array indexings, and only mapping a fresh page
	// takes a lock. Benchmarks are data-race free by construction
	// (disjoint writes between synchronization points), so cells need no
	// per-cell locking; heapSize is the allocation frontier used for
	// bounds checks.
	heap     *pagetab.Table[mir.Value]
	heapSize atomic.Int64

	statics map[string]int64

	barriers map[string]*barrier
	mutexes  map[string]*sync.Mutex

	threadsMu  sync.Mutex
	nextThread int32
	threads    map[int32]*threadState
	wg         sync.WaitGroup

	ops    atomic.Int64
	maxOps int64

	errMu    sync.Mutex
	firstErr error
}

type threadState struct {
	id   int32
	done chan struct{}
	err  error
}

// Option configures a Machine.
type Option func(*Machine)

// WithTracer attaches a tracer to the machine.
func WithTracer(t Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithMaxOps bounds the total number of executed operations, guarding
// against runaway kernels. The default is 2e9.
func WithMaxOps(n int64) Option {
	return func(m *Machine) { m.maxOps = n }
}

// New creates a machine for the program. A program that fails validation
// is rejected with a verify-stage InvalidInput error carrying every
// validation failure; the machine never executes unvalidated input. Static
// arrays are allocated in declaration order starting at address 0.
func New(prog *mir.Program, opts ...Option) (*Machine, error) {
	if errs := prog.Validate(); len(errs) > 0 {
		return nil, analysis.Wrap(analysis.StageVerify, analysis.InvalidInput,
			errors.Join(errs...), "vm: invalid program").InProgram(prog.Name)
	}
	prog.Layout()
	m := &Machine{
		prog:     prog,
		statics:  map[string]int64{},
		barriers: map[string]*barrier{},
		mutexes:  map[string]*sync.Mutex{},
		threads:  map[int32]*threadState{},
		maxOps:   2_000_000_000,
	}
	for _, opt := range opts {
		opt(m)
	}
	var base int64
	for _, s := range prog.Statics {
		m.statics[s.Name] = base
		base += s.Size
	}
	m.heap = pagetab.New(mir.Value{})
	m.heapSize.Store(base)
	for name, n := range prog.Barriers {
		m.barriers[name] = newBarrier(n)
	}
	for _, name := range prog.Mutexes {
		m.mutexes[name] = &sync.Mutex{}
	}
	return m, nil
}

// StaticBase returns the heap address of a declared static array, or an
// InvalidInput error naming the unknown static.
func (m *Machine) StaticBase(name string) (int64, error) {
	base, ok := m.statics[name]
	if !ok {
		return 0, analysis.Errorf(analysis.StageExecute, analysis.InvalidInput,
			"vm: unknown static %q", name).InProgram(m.prog.Name)
	}
	return base, nil
}

// HeapAt returns the heap value at addr (for inspection after Run), or an
// InvalidInput error for an address outside the allocated heap.
func (m *Machine) HeapAt(addr int64) (mir.Value, error) {
	if addr < 0 || addr >= m.heapSize.Load() {
		return mir.Value{}, analysis.Errorf(analysis.StageExecute, analysis.InvalidInput,
			"vm: HeapAt(%d) out of bounds of %d-cell heap", addr, m.heapSize.Load()).InProgram(m.prog.Name)
	}
	return m.heap.Get(addr), nil
}

// Ops returns the number of operations executed. Threads publish their
// counts in batches, so the value is exact only once Run has returned.
func (m *Machine) Ops() int64 { return m.ops.Load() }

// Run executes the entry function on thread 0 and waits for every spawned
// thread to finish. It returns the entry function's return value (the zero
// Value if it returns nothing) and the first error raised by any thread.
//
// Run is a recover boundary: a panic escaping the interpreter or an
// attached tracer — on the main thread or any spawned one — is converted
// into a structured execute-stage error instead of crashing the process.
// Runtime failures (out-of-bounds access, division by zero, budget
// exhaustion) come back as *analysis.Error values classifiable with
// errors.Is.
func (m *Machine) Run() (ret mir.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			ret, err = mir.Value{}, m.classify(analysis.Recovered(analysis.StageExecute, r))
		}
	}()
	entry := m.prog.Funcs[m.prog.Entry]
	if entry == nil {
		return mir.Value{}, analysis.Errorf(analysis.StageVerify, analysis.InvalidInput,
			"vm: entry function %q not defined", m.prog.Entry).InProgram(m.prog.Name)
	}
	t0 := m.registerThread()
	rv, err := m.runThread(t0, entry, nil)
	m.wg.Wait()
	if err != nil {
		return mir.Value{}, m.classify(err)
	}
	m.errMu.Lock()
	defer m.errMu.Unlock()
	if m.firstErr != nil {
		return mir.Value{}, m.classify(m.firstErr)
	}
	return rv.v, nil
}

// runThread executes fn on thread t inside the thread's own recover
// boundary (each goroutine has its own stack, so every VM thread needs
// one) and retires the thread. Used for thread 0 and spawned threads alike.
func (m *Machine) runThread(t *thread, fn *mir.Func, args []traced) (ret traced, err error) {
	defer func() {
		if r := recover(); r != nil {
			ret, err = traced{}, analysis.Recovered(analysis.StageExecute, r).OnThread(t.id)
		}
		m.finishThread(t, err)
	}()
	ret, _, err = m.callFunc(t, fn, args, nil)
	return ret, err
}

// classify promotes a plain runtime error to a structured execute-stage
// error and stamps the program name on an already-structured one.
func (m *Machine) classify(err error) error {
	var ae *analysis.Error
	if errors.As(err, &ae) {
		ae.InProgram(m.prog.Name)
		return err
	}
	return analysis.Wrap(analysis.StageExecute, analysis.InvalidInput, err,
		"runtime error").InProgram(m.prog.Name)
}

func (m *Machine) registerThread() *thread {
	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	id := m.nextThread
	m.nextThread++
	st := &threadState{id: id, done: make(chan struct{})}
	m.threads[id] = st
	t := &thread{m: m, id: id, state: st}
	if m.tracer != nil {
		t.tr = m.tracer.ThreadTracer(id)
	}
	return t
}

func (m *Machine) finishThread(t *thread, err error) {
	if ferr := t.flushOps(); err == nil {
		err = ferr
	}
	if err != nil {
		m.errMu.Lock()
		if m.firstErr == nil {
			m.firstErr = err
		}
		m.errMu.Unlock()
		// A failed thread will never reach its barriers; poison them all
		// so sibling threads unblock (and the error, not a deadlock, is
		// what surfaces).
		for _, b := range m.barriers {
			b.poison()
		}
	}
	t.state.err = err
	close(t.state.done)
}

func (m *Machine) threadByID(id int32) (*threadState, bool) {
	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	st, ok := m.threads[id]
	return st, ok
}

// alloc reserves n heap cells and returns the base address. Fresh cells
// read as the zero Value; pages are mapped lazily on first store.
func (m *Machine) alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative allocation size %d", n)
	}
	return m.heapSize.Add(n) - n, nil
}

// load and store access the heap. Mapped cells are reached lock-free; the
// allocation frontier is an atomic, so neither path takes a lock and
// bounds are always checked.
func (m *Machine) load(addr int64) (mir.Value, error) {
	if addr < 0 || addr >= m.heapSize.Load() {
		return mir.Value{}, fmt.Errorf("load out of bounds: address %d", addr)
	}
	return m.heap.Get(addr), nil
}

func (m *Machine) store(addr int64, v mir.Value) error {
	if addr < 0 || addr >= m.heapSize.Load() {
		return fmt.Errorf("store out of bounds: address %d", addr)
	}
	m.heap.Set(addr, v)
	return nil
}

// barrier is a cyclic barrier, the analogue of pthread_barrier_t.
type barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	parties    int
	waiting    int
	generation int
	broken     bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until parties threads have arrived, or the barrier has been
// poisoned by a failing thread.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return
	}
	gen := b.generation
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.generation++
		b.cond.Broadcast()
		return
	}
	for gen == b.generation && !b.broken {
		b.cond.Wait()
	}
}

// poison permanently releases the barrier; used when a thread errors out.
func (b *barrier) poison() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}
