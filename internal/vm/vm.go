// Package vm executes MIR programs on a shared-memory virtual machine with
// real (goroutine-backed) threads, barriers, and mutexes.
//
// The machine plays the role of the instrumented binary in the paper's
// Figure 1: a Tracer observes every operation execution, every shadow
// memory update, and the dynamic loop scope in which each operation runs.
// With a nil tracer the machine is a plain interpreter, used to validate
// benchmark kernels at reference scale.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"discovery/internal/ddg"
	"discovery/internal/mir"
)

// Tracer observes an instrumented execution. Implementations must be safe
// for concurrent use by multiple threads; the trace package serializes
// through an internal lock, the analogue of the paper's synchronized shadow
// memory accesses (§3).
type Tracer interface {
	// Node records the execution of an operation, returning the new node
	// id. Operand ids may be ddg.NoNode for constant or untraced inputs.
	Node(op mir.Op, pos mir.Pos, thread int32, scope *ddg.Scope, operands ...ddg.NodeID) ddg.NodeID
	// LoadShadow returns the node that defined the value at addr, or
	// ddg.NoNode if the location was never traced.
	LoadShadow(addr int64) ddg.NodeID
	// StoreShadow records that the value at addr was defined by def.
	StoreShadow(addr int64, def ddg.NodeID)
}

// Machine executes one program. A Machine is single-use: create, Run,
// inspect.
type Machine struct {
	prog   *mir.Program
	tracer Tracer

	heapMu sync.RWMutex
	heap   []mir.Value

	statics map[string]int64

	barriers map[string]*barrier
	mutexes  map[string]*sync.Mutex

	threadsMu  sync.Mutex
	nextThread int32
	threads    map[int32]*threadState
	wg         sync.WaitGroup

	nextInvocation atomic.Uint64
	ops            atomic.Int64
	maxOps         int64

	errMu    sync.Mutex
	firstErr error
}

type threadState struct {
	id   int32
	done chan struct{}
	err  error
}

// Option configures a Machine.
type Option func(*Machine)

// WithTracer attaches a tracer to the machine.
func WithTracer(t Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithMaxOps bounds the total number of executed operations, guarding
// against runaway kernels. The default is 2e9.
func WithMaxOps(n int64) Option {
	return func(m *Machine) { m.maxOps = n }
}

// New creates a machine for the program. The program must validate; New
// panics otherwise (benchmarks are constructed, not user input). Static
// arrays are allocated in declaration order starting at address 0.
func New(prog *mir.Program, opts ...Option) *Machine {
	if errs := prog.Validate(); len(errs) > 0 {
		panic(fmt.Sprintf("vm: invalid program %q: %v", prog.Name, errs[0]))
	}
	prog.Layout()
	m := &Machine{
		prog:     prog,
		statics:  map[string]int64{},
		barriers: map[string]*barrier{},
		mutexes:  map[string]*sync.Mutex{},
		threads:  map[int32]*threadState{},
		maxOps:   2_000_000_000,
	}
	for _, opt := range opts {
		opt(m)
	}
	var base int64
	for _, s := range prog.Statics {
		m.statics[s.Name] = base
		base += s.Size
	}
	m.heap = make([]mir.Value, base)
	for name, n := range prog.Barriers {
		m.barriers[name] = newBarrier(n)
	}
	for _, name := range prog.Mutexes {
		m.mutexes[name] = &sync.Mutex{}
	}
	return m
}

// StaticBase returns the heap address of a declared static array.
func (m *Machine) StaticBase(name string) int64 {
	base, ok := m.statics[name]
	if !ok {
		panic(fmt.Sprintf("vm: unknown static %q", name))
	}
	return base
}

// HeapAt returns the heap value at addr (for test inspection after Run).
func (m *Machine) HeapAt(addr int64) mir.Value {
	m.heapMu.RLock()
	defer m.heapMu.RUnlock()
	if addr < 0 || addr >= int64(len(m.heap)) {
		panic(fmt.Sprintf("vm: HeapAt(%d) out of bounds", addr))
	}
	return m.heap[addr]
}

// Ops returns the number of operations executed so far.
func (m *Machine) Ops() int64 { return m.ops.Load() }

// Run executes the entry function on thread 0 and waits for every spawned
// thread to finish. It returns the entry function's return value (the zero
// Value if it returns nothing) and the first error raised by any thread.
func (m *Machine) Run() (mir.Value, error) {
	entry := m.prog.Funcs[m.prog.Entry]
	t0 := m.registerThread()
	ret, _, err := m.callFunc(t0, entry, nil, nil)
	m.finishThread(t0, err)
	m.wg.Wait()
	if err != nil {
		return mir.Value{}, err
	}
	m.errMu.Lock()
	defer m.errMu.Unlock()
	if m.firstErr != nil {
		return mir.Value{}, m.firstErr
	}
	return ret.v, nil
}

func (m *Machine) registerThread() *thread {
	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	id := m.nextThread
	m.nextThread++
	st := &threadState{id: id, done: make(chan struct{})}
	m.threads[id] = st
	return &thread{m: m, id: id, state: st}
}

func (m *Machine) finishThread(t *thread, err error) {
	if err != nil {
		m.errMu.Lock()
		if m.firstErr == nil {
			m.firstErr = err
		}
		m.errMu.Unlock()
		// A failed thread will never reach its barriers; poison them all
		// so sibling threads unblock (and the error, not a deadlock, is
		// what surfaces).
		for _, b := range m.barriers {
			b.poison()
		}
	}
	t.state.err = err
	close(t.state.done)
}

func (m *Machine) threadByID(id int32) (*threadState, bool) {
	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	st, ok := m.threads[id]
	return st, ok
}

// alloc reserves n heap cells and returns the base address.
func (m *Machine) alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative allocation size %d", n)
	}
	m.heapMu.Lock()
	defer m.heapMu.Unlock()
	base := int64(len(m.heap))
	m.heap = append(m.heap, make([]mir.Value, n)...)
	return base, nil
}

// load and store access the heap. Benchmarks are data-race free by
// construction (disjoint writes between synchronization points), so cells
// need no per-cell locking; the read lock only protects the slice header
// against concurrent allocation, and bounds are always checked.
func (m *Machine) load(addr int64) (mir.Value, error) {
	m.heapMu.RLock()
	defer m.heapMu.RUnlock()
	if addr < 0 || addr >= int64(len(m.heap)) {
		return mir.Value{}, fmt.Errorf("load out of bounds: address %d", addr)
	}
	return m.heap[addr], nil
}

func (m *Machine) store(addr int64, v mir.Value) error {
	m.heapMu.RLock()
	defer m.heapMu.RUnlock()
	if addr < 0 || addr >= int64(len(m.heap)) {
		return fmt.Errorf("store out of bounds: address %d", addr)
	}
	m.heap[addr] = v
	return nil
}

// countOp enforces the operation budget.
func (m *Machine) countOp() error {
	if m.ops.Add(1) > m.maxOps {
		return fmt.Errorf("operation budget of %d exceeded", m.maxOps)
	}
	return nil
}

// barrier is a cyclic barrier, the analogue of pthread_barrier_t.
type barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	parties    int
	waiting    int
	generation int
	broken     bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until parties threads have arrived, or the barrier has been
// poisoned by a failing thread.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return
	}
	gen := b.generation
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.generation++
		b.cond.Broadcast()
		return
	}
	for gen == b.generation && !b.broken {
		b.cond.Wait()
	}
}

// poison permanently releases the barrier; used when a thread errors out.
func (b *barrier) poison() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}
