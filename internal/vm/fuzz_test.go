package vm

// FuzzVM drives the machine with byte-generated programs that mix honest
// kernels with runtime hazards: out-of-bounds heap addressing, unbounded
// while loops (cut by the op budget), spawn/join and mutex use, division
// by values that reach zero. The contract under fuzzing: New either
// rejects the program or Run terminates with a typed *analysis.Error —
// the machine never panics on any input reachable from the public API.

import (
	"errors"
	"testing"

	"discovery/internal/analysis"
	"discovery/internal/mir"
)

// genVMProgram decodes a byte stream into a small valid program whose
// runtime behaviour (not shape) is adversarial.
func genVMProgram(data []byte) *mir.Program {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	p := mir.NewProgram("vmfuzz")
	n := int64(2 + next()%6)
	p.DeclareStatic("a", n)
	p.DeclareStatic("b", n)
	p.DeclareMutex("mu")

	f, body := p.NewFunc("main", "vmfuzz.c")
	wf, wb := p.NewFunc("worker", "vmfuzz.c", "lo")
	wb.Lock("mu")
	wb.Store(mir.Idx(mir.G("b"), mir.V("lo")), mir.F(1))
	wb.Unlock("mu")
	wb.Finish(wf)

	body.For("i", mir.C(0), mir.C(n), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("a"), mir.V("i")), mir.I2F(mir.V("i")))
	})
	nStmts := int(next()) % 6
	for s := 0; s < nStmts; s++ {
		c := int64(next()) // may index far outside the statics
		switch next() % 6 {
		case 0: // possibly out-of-bounds store
			body.Store(mir.Idx(mir.G("a"), mir.C(c*int64(next()))), mir.F(2))
		case 1: // possibly out-of-bounds load
			body.Assign("x", mir.Load(mir.Idx(mir.G("b"), mir.C(c))))
		case 2: // division whose divisor can reach zero
			body.Assign("x", mir.Div(mir.C(c), mir.C(int64(next())%3)))
		case 3: // while loop, possibly never terminating (op budget cuts it)
			body.Assign("k", mir.C(c%8))
			body.While(mir.Gt(mir.V("k"), mir.C(0)), func(b *mir.Block) {
				if next()%2 == 0 {
					b.Assign("k", mir.Sub(mir.V("k"), mir.C(1)))
				} else {
					b.Assign("k", mir.Add(mir.V("k"), mir.C(0))) // stuck
				}
			})
		case 4: // spawn/join a worker on a possibly-invalid index
			body.Spawn("t", "worker", mir.C(c%(n+2)))
			body.Join(mir.V("t"))
		case 5: // reduction over whatever the heap holds now
			body.Assign("acc", mir.F(0))
			body.For("i", mir.C(0), mir.C(n), mir.C(1), func(b *mir.Block) {
				b.Assign("acc", mir.FAdd(mir.V("acc"),
					mir.Load(mir.Idx(mir.G("a"), mir.V("i")))))
			})
		}
	}
	body.Return(mir.V("acc"))
	body.Finish(f)
	p.SetEntry("main")
	return p
}

func FuzzVM(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 5, 0, 7, 1, 1, 2, 2, 3, 0, 4, 4, 5, 5})
	f.Add([]byte{0, 4, 200, 3, 1, 255, 0, 0, 2, 1, 3, 1, 9})
	f.Add([]byte{7, 3, 10, 4, 2, 4, 1, 4, 3, 4, 5, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := genVMProgram(data)
		m, err := New(p, WithMaxOps(50_000))
		if err != nil {
			var ae *analysis.Error
			if !errors.As(err, &ae) {
				t.Fatalf("New returned an untyped error: %v", err)
			}
			return
		}
		if _, err := m.Run(); err != nil {
			var ae *analysis.Error
			if !errors.As(err, &ae) {
				t.Fatalf("Run returned an untyped error: %v", err)
			}
		}
	})
}
