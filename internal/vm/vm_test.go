package vm

import (
	"errors"
	"strings"
	"testing"

	"discovery/internal/analysis"
	"discovery/internal/mir"
)

// runProgram builds a machine and runs it, failing the test on error.
func runProgram(t *testing.T, p *mir.Program, opts ...Option) (mir.Value, *Machine) {
	t.Helper()
	m := mustNew(t, p, opts...)
	v, err := m.Run()
	if err != nil {
		t.Fatalf("run %q: %v", p.Name, err)
	}
	return v, m
}

// mustNew builds a machine, failing the test on a validation error.
func mustNew(t *testing.T, p *mir.Program, opts ...Option) *Machine {
	t.Helper()
	m, err := New(p, opts...)
	if err != nil {
		t.Fatalf("New(%q): %v", p.Name, err)
	}
	return m
}

func TestSequentialSum(t *testing.T) {
	p := mir.NewProgram("sum")
	p.DeclareStatic("a", 8)
	f, b := p.NewFunc("main", "sum.c")
	b.For("i", mir.C(0), mir.C(8), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("a"), mir.V("i")), mir.I2F(mir.Mul(mir.V("i"), mir.V("i"))))
	})
	b.Assign("sum", mir.F(0))
	b.For("i", mir.C(0), mir.C(8), mir.C(1), func(b *mir.Block) {
		b.Assign("sum", mir.FAdd(mir.V("sum"), mir.Load(mir.Idx(mir.G("a"), mir.V("i")))))
	})
	b.Return(mir.V("sum"))
	b.Finish(f)

	v, m := runProgram(t, p)
	if got, want := v.Float(), 140.0; got != want { // sum of squares 0..7
		t.Errorf("sum = %g, want %g", got, want)
	}
	if m.Ops() == 0 {
		t.Error("no operations counted")
	}
}

func TestHeapAndStatics(t *testing.T) {
	p := mir.NewProgram("statics")
	p.DeclareStatic("x", 4)
	p.DeclareStatic("y", 4)
	f, b := p.NewFunc("main", "s.c")
	b.Store(mir.Idx(mir.G("y"), mir.C(2)), mir.C(99))
	b.Finish(f)
	_, m := runProgram(t, p)
	bx, errX := m.StaticBase("x")
	by, errY := m.StaticBase("y")
	if errX != nil || errY != nil {
		t.Fatalf("StaticBase errors: %v %v", errX, errY)
	}
	if bx != 0 || by != 4 {
		t.Errorf("static bases: x=%d y=%d", bx, by)
	}
	v, err := m.HeapAt(6)
	if err != nil {
		t.Fatalf("HeapAt(6): %v", err)
	}
	if got := v.Int(); got != 99 {
		t.Errorf("heap[6] = %d, want 99", got)
	}
	if _, err := m.StaticBase("ghost"); !errors.Is(err, analysis.ErrInvalidInput) {
		t.Errorf("StaticBase of unknown static = %v, want invalid input", err)
	}
	if _, err := m.HeapAt(1 << 40); !errors.Is(err, analysis.ErrInvalidInput) {
		t.Errorf("HeapAt out of bounds = %v, want invalid input", err)
	}
	if _, err := m.HeapAt(-1); err == nil {
		t.Error("HeapAt(-1) did not error")
	}
}

func TestAlloc(t *testing.T) {
	p := mir.NewProgram("alloc")
	f, b := p.NewFunc("main", "a.c")
	b.Assign("buf", mir.Alloc(mir.C(16)))
	b.Store(mir.Idx(mir.V("buf"), mir.C(15)), mir.C(7))
	b.Return(mir.Load(mir.Idx(mir.V("buf"), mir.C(15))))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 7 {
		t.Errorf("alloc round trip = %v", v)
	}
}

func TestConditionals(t *testing.T) {
	p := mir.NewProgram("cond")
	f, b := p.NewFunc("main", "c.c")
	b.Assign("x", mir.C(10))
	b.IfElse(mir.Gt(mir.V("x"), mir.C(5)),
		func(b *mir.Block) { b.Assign("r", mir.C(1)) },
		func(b *mir.Block) { b.Assign("r", mir.C(2)) })
	b.If(mir.Lt(mir.V("x"), mir.C(5)), func(b *mir.Block) {
		b.Assign("r", mir.C(3))
	})
	b.Return(mir.V("r"))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 1 {
		t.Errorf("conditional result = %v, want 1", v)
	}
}

func TestWhileLoop(t *testing.T) {
	p := mir.NewProgram("while")
	f, b := p.NewFunc("main", "w.c")
	b.Assign("n", mir.C(100))
	b.Assign("steps", mir.C(0))
	b.While(mir.Gt(mir.V("n"), mir.C(1)), func(b *mir.Block) {
		// Collatz-ish: halve.
		b.Assign("n", mir.Div(mir.V("n"), mir.C(2)))
		b.Assign("steps", mir.Add(mir.V("steps"), mir.C(1)))
	})
	b.Return(mir.V("steps"))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 6 {
		t.Errorf("halving steps = %v, want 6", v)
	}
}

func TestFunctionCalls(t *testing.T) {
	p := mir.NewProgram("calls")
	sq, sb := p.NewFunc("square", "lib.c", "x")
	sb.Return(mir.Mul(mir.V("x"), mir.V("x")))
	sb.Finish(sq)
	f, b := p.NewFunc("main", "main.c")
	b.Assign("r", mir.Call("square", mir.Call("square", mir.C(3))))
	b.Return(mir.V("r"))
	b.Finish(f)
	p.SetEntry("main")
	v, _ := runProgram(t, p)
	if v.Int() != 81 {
		t.Errorf("square(square(3)) = %v, want 81", v)
	}
}

// threadedSumProgram splits an array sum over nproc threads with partial
// results combined by the main thread after joining — the streamcluster
// shape from the paper's Figure 2.
func threadedSumProgram(n, nproc int64) *mir.Program {
	p := mir.NewProgram("tsum")
	p.DeclareStatic("data", n)
	p.DeclareStatic("partial", nproc)
	p.DeclareStatic("out", 1)
	p.DeclareBarrier("bar", int(nproc))

	w, wb := p.NewFunc("worker", "tsum.c", "pid")
	per := n / nproc
	wb.Assign("k1", mir.Mul(mir.V("pid"), mir.C(per)))
	wb.Assign("k2", mir.Add(mir.V("k1"), mir.C(per)))
	wb.Assign("my", mir.F(0))
	wb.For("k", mir.V("k1"), mir.V("k2"), mir.C(1), func(b *mir.Block) {
		b.Assign("my", mir.FAdd(mir.V("my"), mir.Load(mir.Idx(mir.G("data"), mir.V("k")))))
	})
	wb.Store(mir.Idx(mir.G("partial"), mir.V("pid")), mir.V("my"))
	wb.Barrier("bar")
	wb.Finish(w)

	f, b := p.NewFunc("main", "tsum.c")
	b.For("i", mir.C(0), mir.C(n), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("data"), mir.V("i")), mir.I2F(mir.V("i")))
	})
	b.For("t", mir.C(0), mir.C(nproc), mir.C(1), func(b *mir.Block) {
		b.Spawn("h", "worker", mir.V("t"))
	})
	// Handles live in loop-local vars; join by thread id instead (worker
	// thread ids start at 1, after the main thread's 0).
	b.For("t", mir.C(0), mir.C(nproc), mir.C(1), func(b *mir.Block) {
		b.Join(mir.Add(mir.V("t"), mir.C(1)))
	})
	b.Assign("total", mir.F(0))
	b.For("i", mir.C(0), mir.C(nproc), mir.C(1), func(b *mir.Block) {
		b.Assign("total", mir.FAdd(mir.V("total"), mir.Load(mir.Idx(mir.G("partial"), mir.V("i")))))
	})
	b.Return(mir.V("total"))
	b.Finish(f)
	p.SetEntry("main")
	return p
}

func TestThreadedSum(t *testing.T) {
	n, nproc := int64(64), int64(4)
	p := threadedSumProgram(n, nproc)
	v, _ := runProgram(t, p)
	want := float64(n*(n-1)) / 2
	if v.Float() != want {
		t.Errorf("threaded sum = %v, want %g", v, want)
	}
}

func TestMutexProtectedAccumulation(t *testing.T) {
	p := mir.NewProgram("mutex")
	p.DeclareStatic("acc", 1)
	p.DeclareMutex("mu")
	w, wb := p.NewFunc("worker", "m.c", "pid")
	wb.For("i", mir.C(0), mir.C(100), mir.C(1), func(b *mir.Block) {
		b.Lock("mu")
		b.Store(mir.Idx(mir.G("acc"), mir.C(0)),
			mir.Add(mir.Load(mir.Idx(mir.G("acc"), mir.C(0))), mir.C(1)))
		b.Unlock("mu")
	})
	wb.Finish(w)
	f, b := p.NewFunc("main", "m.c")
	b.Spawn("t1", "worker", mir.C(0))
	b.Spawn("t2", "worker", mir.C(1))
	b.Join(mir.V("t1"))
	b.Join(mir.V("t2"))
	b.Return(mir.Load(mir.Idx(mir.G("acc"), mir.C(0))))
	b.Finish(f)
	p.SetEntry("main")
	v, _ := runProgram(t, p)
	if v.Int() != 200 {
		t.Errorf("mutex accumulation = %v, want 200", v)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *mir.Block)
		want  string
	}{
		{"load out of bounds", func(b *mir.Block) {
			b.Return(mir.Load(mir.C(1000)))
		}, "out of bounds"},
		{"store out of bounds", func(b *mir.Block) {
			b.Store(mir.C(-1), mir.C(0))
		}, "out of bounds"},
		{"division by zero", func(b *mir.Block) {
			b.Return(mir.Div(mir.C(1), mir.C(0)))
		}, "division by zero"},
		{"undefined variable", func(b *mir.Block) {
			b.Return(mir.V("ghost"))
		}, "undefined variable"},
		{"join unknown thread", func(b *mir.Block) {
			b.Join(mir.C(42))
		}, "unknown thread"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := mir.NewProgram("err")
			f, b := p.NewFunc("main", "e.c")
			c.build(b)
			b.Finish(f)
			_, err := mustNew(t, p).Run()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	p := mir.NewProgram("pos")
	f, b := p.NewFunc("main", "pos.c")
	b.Return(mir.Div(mir.C(1), mir.C(0)))
	b.Finish(f)
	_, err := mustNew(t, p).Run()
	if err == nil || !strings.Contains(err.Error(), "pos.c:") {
		t.Errorf("error lacks source position: %v", err)
	}
}

func TestOpBudget(t *testing.T) {
	p := mir.NewProgram("budget")
	f, b := p.NewFunc("main", "b.c")
	b.Assign("x", mir.C(0))
	b.For("i", mir.C(0), mir.C(1000000), mir.C(1), func(b *mir.Block) {
		b.Assign("x", mir.Add(mir.V("x"), mir.C(1)))
	})
	b.Finish(f)
	m := mustNew(t, p, WithMaxOps(100))
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget not enforced: %v", err)
	}
	if !errors.Is(err, analysis.ErrResourceExhausted) {
		t.Errorf("budget error = %v, want resource exhausted", err)
	}
}

func TestSpawnedThreadErrorSurfaces(t *testing.T) {
	p := mir.NewProgram("childerr")
	w, wb := p.NewFunc("worker", "c.c", "pid")
	wb.Return(mir.Div(mir.C(1), mir.C(0)))
	wb.Finish(w)
	f, b := p.NewFunc("main", "c.c")
	b.Spawn("t", "worker", mir.C(0))
	b.Join(mir.V("t"))
	b.Finish(f)
	p.SetEntry("main")
	if _, err := mustNew(t, p).Run(); err == nil {
		t.Error("child thread error not surfaced")
	}
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	m, err := New(mir.NewProgram("empty"))
	if err == nil {
		t.Fatal("New accepted an invalid program")
	}
	if m != nil {
		t.Error("New returned a machine alongside the error")
	}
	if !errors.Is(err, analysis.ErrInvalidInput) {
		t.Errorf("error kind = %v, want invalid input", err)
	}
	if !errors.Is(err, &analysis.Error{Stage: analysis.StageVerify}) {
		t.Errorf("error stage = %v, want verify", err)
	}
	if !strings.Contains(err.Error(), "empty") {
		t.Errorf("error does not name the program: %v", err)
	}
}

// panicTracer panics when asked for a thread tracer, standing in for an
// instrumentation bug.
type panicTracer struct{ onThread int32 }

func (p *panicTracer) ThreadTracer(thread int32) ThreadTracer {
	if thread == p.onThread {
		panic("tracer bug")
	}
	return nil
}

func TestTracerPanicContainedOnMainThread(t *testing.T) {
	p := mir.NewProgram("tpanic")
	f, b := p.NewFunc("main", "t.c")
	b.Return(mir.C(1))
	b.Finish(f)
	m := mustNew(t, p, WithTracer(&panicTracer{onThread: 0}))
	_, err := m.Run()
	if err == nil {
		t.Fatal("tracer panic did not surface as an error")
	}
	var ae *analysis.Error
	if !errors.As(err, &ae) || ae.Kind != analysis.Internal {
		t.Errorf("tracer panic = %v, want internal error", err)
	}
	if len(ae.Stack) == 0 {
		t.Error("recovered tracer panic lost its stack")
	}
}

func TestTracerPanicContainedOnSpawnedThread(t *testing.T) {
	// The panic fires during the spawned thread's registration, on the
	// spawning thread's stack; a second variant panicking inside the child
	// goroutine would exercise runThread's own recover the same way.
	p := mir.NewProgram("tpanic2")
	w, wb := p.NewFunc("worker", "t.c", "pid")
	wb.Return(mir.V("pid"))
	wb.Finish(w)
	f, b := p.NewFunc("main", "t.c")
	b.Spawn("t1", "worker", mir.C(0))
	b.Join(mir.V("t1"))
	b.Finish(f)
	p.SetEntry("main")
	m := mustNew(t, p, WithTracer(&panicTracer{onThread: 1}))
	if _, err := m.Run(); err == nil || !errors.Is(err, analysis.ErrInternal) {
		t.Errorf("spawned-thread tracer panic = %v, want internal error", err)
	}
}

func TestBarrierCycles(t *testing.T) {
	// Two threads synchronize twice through the same barrier; a write
	// before the first wait must be visible after it.
	p := mir.NewProgram("barrier")
	p.DeclareStatic("slots", 2)
	p.DeclareStatic("sums", 2)
	p.DeclareBarrier("bar", 2)
	w, wb := p.NewFunc("worker", "b.c", "pid")
	wb.Store(mir.Idx(mir.G("slots"), mir.V("pid")), mir.Add(mir.V("pid"), mir.C(10)))
	wb.Barrier("bar")
	// Read the other thread's slot.
	wb.Assign("other", mir.Sub(mir.C(1), mir.V("pid")))
	wb.Assign("v", mir.Load(mir.Idx(mir.G("slots"), mir.V("other"))))
	wb.Barrier("bar")
	wb.Store(mir.Idx(mir.G("sums"), mir.V("pid")), mir.V("v"))
	wb.Finish(w)
	f, b := p.NewFunc("main", "b.c")
	b.Spawn("t1", "worker", mir.C(0))
	b.Spawn("t2", "worker", mir.C(1))
	b.Join(mir.V("t1"))
	b.Join(mir.V("t2"))
	b.Return(mir.Add(mir.Load(mir.Idx(mir.G("sums"), mir.C(0))),
		mir.Load(mir.Idx(mir.G("sums"), mir.C(1)))))
	b.Finish(f)
	p.SetEntry("main")
	v, _ := runProgram(t, p)
	if v.Int() != 21 { // 11 + 10
		t.Errorf("barrier exchange = %v, want 21", v)
	}
}

func TestNestedLoops(t *testing.T) {
	p := mir.NewProgram("nested")
	f, b := p.NewFunc("main", "n.c")
	b.Assign("acc", mir.C(0))
	b.For("i", mir.C(0), mir.C(5), mir.C(1), func(b *mir.Block) {
		b.For("j", mir.C(0), mir.C(5), mir.C(1), func(b *mir.Block) {
			b.Assign("acc", mir.Add(mir.V("acc"), mir.Mul(mir.V("i"), mir.V("j"))))
		})
	})
	b.Return(mir.V("acc"))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 100 { // (0+1+2+3+4)^2
		t.Errorf("nested loops = %v, want 100", v)
	}
}

func TestForLoopStepAndEmpty(t *testing.T) {
	p := mir.NewProgram("steps")
	f, b := p.NewFunc("main", "s.c")
	b.Assign("acc", mir.C(0))
	b.For("i", mir.C(0), mir.C(10), mir.C(3), func(b *mir.Block) { // 0,3,6,9
		b.Assign("acc", mir.Add(mir.V("acc"), mir.V("i")))
	})
	b.For("i", mir.C(5), mir.C(5), mir.C(1), func(b *mir.Block) { // empty
		b.Assign("acc", mir.C(-1))
	})
	b.Return(mir.V("acc"))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 18 {
		t.Errorf("stepped loop = %v, want 18", v)
	}
}

func TestReturnInsideLoop(t *testing.T) {
	p := mir.NewProgram("earlyret")
	f, b := p.NewFunc("main", "r.c")
	b.For("i", mir.C(0), mir.C(100), mir.C(1), func(b *mir.Block) {
		b.If(mir.Eq(mir.V("i"), mir.C(7)), func(b *mir.Block) {
			b.Return(mir.V("i"))
		})
	})
	b.Return(mir.C(-1))
	b.Finish(f)
	v, _ := runProgram(t, p)
	if v.Int() != 7 {
		t.Errorf("early return = %v, want 7", v)
	}
}
