package vm

import (
	"fmt"

	"discovery/internal/analysis"
	"discovery/internal/ddg"
	"discovery/internal/mir"
)

// thread is the per-thread execution context: its id, its current dynamic
// loop scope, its private tracing handle, and its pending (unpublished)
// operation count. The scope is what the paper's runtime support traces
// "on loop boundaries" (§6, Implementation).
type thread struct {
	m       *Machine
	id      int32
	state   *threadState
	scope   *ddg.Scope
	tr      ThreadTracer
	pending int64
	invs    uint64
}

// nextInvocation allocates a dynamic loop-invocation id. Ids are
// (thread, per-thread counter) packed into one word rather than drawn
// from a shared counter: compaction only needs distinctness, and
// per-thread allocation keeps them independent of how the scheduler
// interleaved the run — a requirement for deterministic DDGs. Thread 0
// yields the bare sequence 1, 2, 3, ... so single-threaded traces are
// unchanged.
func (t *thread) nextInvocation() uint64 {
	t.invs++
	return uint64(t.id)<<32 | t.invs
}

// opFlushBatch is how many operations a thread executes between
// publications to the machine's shared counter. Batching keeps the hot
// path free of shared atomics; the operation budget is therefore enforced
// with up to opFlushBatch-1 operations of slack per thread.
const opFlushBatch = 256

// countOp counts one executed operation against the budget.
func (t *thread) countOp() error {
	t.pending++
	if t.pending >= opFlushBatch {
		return t.flushOps()
	}
	return nil
}

// flushOps publishes the thread's pending operation count and enforces
// the budget.
func (t *thread) flushOps() error {
	if t.pending == 0 {
		return nil
	}
	total := t.m.ops.Add(t.pending)
	t.pending = 0
	if total > t.m.maxOps {
		return analysis.Errorf(analysis.StageExecute, analysis.ResourceExhausted,
			"operation budget of %d exceeded", t.m.maxOps).OnThread(t.id)
	}
	return nil
}

// traced pairs a runtime value with the DDG node that defined it
// (ddg.NoNode for constants and other untraced sources).
type traced struct {
	v   mir.Value
	def ddg.NodeID
}

// frame holds the local variables of one function activation.
type frame struct {
	vars map[string]traced
}

func newFrame() *frame { return &frame{vars: map[string]traced{}} }

func (f *frame) get(name string) (traced, bool) {
	tv, ok := f.vars[name]
	return tv, ok
}

func (f *frame) set(name string, tv traced) { f.vars[name] = tv }

// callFunc executes fn with the given arguments in thread t, returning its
// return value.
func (m *Machine) callFunc(t *thread, fn *mir.Func, args []traced, _ *frame) (traced, bool, error) {
	if len(args) != len(fn.Params) {
		return traced{}, false, fmt.Errorf("call of %q with %d args, want %d",
			fn.Name, len(args), len(fn.Params))
	}
	fr := newFrame()
	for i, p := range fn.Params {
		fr.set(p, args[i])
	}
	return m.execStmts(t, fr, fn.Body)
}

// execStmts executes a statement list. It reports whether a return was
// executed and, if so, the returned value.
func (m *Machine) execStmts(t *thread, fr *frame, stmts []mir.Stmt) (traced, bool, error) {
	for _, s := range stmts {
		ret, returned, err := m.execStmt(t, fr, s)
		if err != nil || returned {
			return ret, returned, err
		}
	}
	return traced{}, false, nil
}

func (m *Machine) execStmt(t *thread, fr *frame, s mir.Stmt) (traced, bool, error) {
	fail := func(err error) (traced, bool, error) {
		pos := s.Position()
		return traced{}, false, fmt.Errorf("%s:%d: %w", pos.File, pos.Line, err)
	}
	switch s := s.(type) {
	case *mir.AssignStmt:
		tv, err := m.evalExpr(t, fr, s.X)
		if err != nil {
			return fail(err)
		}
		fr.set(s.Var, tv)

	case *mir.StoreStmt:
		addr, err := m.evalExpr(t, fr, s.Addr)
		if err != nil {
			return fail(err)
		}
		val, err := m.evalExpr(t, fr, s.Val)
		if err != nil {
			return fail(err)
		}
		if err := m.store(addr.v.Int(), val.v); err != nil {
			return fail(err)
		}
		if t.tr != nil {
			t.tr.StoreShadow(addr.v.Int(), val.def)
		}

	case *mir.ForStmt:
		from, err := m.evalExpr(t, fr, s.From)
		if err != nil {
			return fail(err)
		}
		inv := t.nextInvocation()
		entered := false
		for i := from.v.Int(); ; {
			to, err := m.evalExpr(t, fr, s.To)
			if err != nil {
				return fail(err)
			}
			if i >= to.v.Int() {
				break
			}
			if !entered {
				t.scope = t.scope.Enter(s.Loop, inv)
				entered = true
			} else {
				t.scope = t.scope.NextIter()
			}
			fr.set(s.Var, traced{v: mir.IntV(i), def: ddg.NoNode})
			ret, returned, err := m.execStmts(t, fr, s.Body)
			if err != nil || returned {
				if entered {
					t.scope = t.scope.Exit()
				}
				return ret, returned, err
			}
			step, err := m.evalExpr(t, fr, s.Step)
			if err != nil {
				return fail(err)
			}
			i += step.v.Int()
		}
		if entered {
			t.scope = t.scope.Exit()
		}

	case *mir.WhileStmt:
		inv := t.nextInvocation()
		entered := false
		for iter := 0; ; iter++ {
			if !entered {
				t.scope = t.scope.Enter(s.Loop, inv)
				entered = true
			} else {
				t.scope = t.scope.NextIter()
			}
			cond, err := m.evalExpr(t, fr, s.Cond)
			if err != nil {
				t.scope = t.scope.Exit()
				return fail(err)
			}
			if !cond.v.Bool() {
				break
			}
			ret, returned, err := m.execStmts(t, fr, s.Body)
			if err != nil || returned {
				t.scope = t.scope.Exit()
				return ret, returned, err
			}
			if iter > int(m.maxOps) {
				t.scope = t.scope.Exit()
				return fail(analysis.Errorf(analysis.StageExecute, analysis.ResourceExhausted,
					"while loop exceeded operation budget of %d", m.maxOps).OnThread(t.id))
			}
		}
		t.scope = t.scope.Exit()

	case *mir.IfStmt:
		cond, err := m.evalExpr(t, fr, s.Cond)
		if err != nil {
			return fail(err)
		}
		if cond.v.Bool() {
			return m.execStmts(t, fr, s.Then)
		}
		return m.execStmts(t, fr, s.Else)

	case *mir.CallStmt:
		if _, err := m.evalExpr(t, fr, s.Call); err != nil {
			return fail(err)
		}

	case *mir.ReturnStmt:
		if s.X == nil {
			return traced{}, true, nil
		}
		tv, err := m.evalExpr(t, fr, s.X)
		if err != nil {
			return fail(err)
		}
		return tv, true, nil

	case *mir.SpawnStmt:
		callee := m.prog.Funcs[s.Fn]
		if callee == nil {
			return fail(fmt.Errorf("spawn of undefined function %q", s.Fn))
		}
		args := make([]traced, len(s.Args))
		for i, a := range s.Args {
			tv, err := m.evalExpr(t, fr, a)
			if err != nil {
				return fail(err)
			}
			args[i] = tv
		}
		child := m.registerThread()
		fr.set(s.Var, traced{v: mir.IntV(int64(child.id)), def: ddg.NoNode})
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			// runThread installs the child's recover boundary: a panic on a
			// spawned goroutine's stack cannot be caught by Run's own defer.
			m.runThread(child, callee, args)
		}()

	case *mir.JoinStmt:
		handle, err := m.evalExpr(t, fr, s.X)
		if err != nil {
			return fail(err)
		}
		st, ok := m.threadByID(int32(handle.v.Int()))
		if !ok {
			return fail(fmt.Errorf("join of unknown thread %d", handle.v.Int()))
		}
		<-st.done

	case *mir.BarrierStmt:
		m.barriers[s.Name].await()

	case *mir.LockStmt:
		m.mutexes[s.Name].Lock()

	case *mir.UnlockStmt:
		m.mutexes[s.Name].Unlock()

	default:
		return fail(fmt.Errorf("unknown statement %T", s))
	}
	return traced{}, false, nil
}

// evalExpr evaluates an expression, creating DDG nodes for every executed
// operation when a tracer is attached.
func (m *Machine) evalExpr(t *thread, fr *frame, e mir.Expr) (traced, error) {
	switch e := e.(type) {
	case *mir.ConstExpr:
		return traced{v: e.V, def: ddg.NoNode}, nil

	case *mir.VarExpr:
		tv, ok := fr.get(e.Name)
		if !ok {
			return traced{}, fmt.Errorf("read of undefined variable %q", e.Name)
		}
		return tv, nil

	case *mir.StaticExpr:
		base, ok := m.statics[e.Name]
		if !ok {
			return traced{}, fmt.Errorf("reference to undeclared static %q", e.Name)
		}
		return traced{v: mir.IntV(base), def: ddg.NoNode}, nil

	case *mir.BinExpr:
		x, err := m.evalExpr(t, fr, e.X)
		if err != nil {
			return traced{}, err
		}
		y, err := m.evalExpr(t, fr, e.Y)
		if err != nil {
			return traced{}, err
		}
		v, err := mir.EvalBinary(e.Op, x.v, y.v)
		if err != nil {
			pos := e.Position()
			return traced{}, fmt.Errorf("%s:%d: %w", pos.File, pos.Line, err)
		}
		if err := t.countOp(); err != nil {
			return traced{}, err
		}
		def := ddg.NoNode
		if t.tr != nil {
			def = t.tr.Node(e.Op, e.Position(), t.scope, x.def, y.def)
		}
		return traced{v: v, def: def}, nil

	case *mir.UnExpr:
		x, err := m.evalExpr(t, fr, e.X)
		if err != nil {
			return traced{}, err
		}
		v, err := mir.EvalUnary(e.Op, x.v)
		if err != nil {
			pos := e.Position()
			return traced{}, fmt.Errorf("%s:%d: %w", pos.File, pos.Line, err)
		}
		if err := t.countOp(); err != nil {
			return traced{}, err
		}
		def := ddg.NoNode
		if t.tr != nil {
			def = t.tr.Node(e.Op, e.Position(), t.scope, x.def)
		}
		return traced{v: v, def: def}, nil

	case *mir.LoadExpr:
		addr, err := m.evalExpr(t, fr, e.Addr)
		if err != nil {
			return traced{}, err
		}
		v, err := m.load(addr.v.Int())
		if err != nil {
			pos := e.Position()
			return traced{}, fmt.Errorf("%s:%d: %w", pos.File, pos.Line, err)
		}
		def := ddg.NoNode
		if t.tr != nil {
			def = t.tr.LoadShadow(addr.v.Int())
		}
		return traced{v: v, def: def}, nil

	case *mir.CallExpr:
		callee := m.prog.Funcs[e.Fn]
		if callee == nil {
			return traced{}, fmt.Errorf("call of undefined function %q", e.Fn)
		}
		args := make([]traced, len(e.Args))
		for i, a := range e.Args {
			tv, err := m.evalExpr(t, fr, a)
			if err != nil {
				return traced{}, err
			}
			args[i] = tv
		}
		ret, _, err := m.callFunc(t, callee, args, fr)
		return ret, err

	case *mir.AllocExpr:
		count, err := m.evalExpr(t, fr, e.Count)
		if err != nil {
			return traced{}, err
		}
		base, err := m.alloc(count.v.Int())
		if err != nil {
			pos := e.Position()
			return traced{}, fmt.Errorf("%s:%d: %w", pos.File, pos.Line, err)
		}
		return traced{v: mir.IntV(base), def: ddg.NoNode}, nil
	}
	return traced{}, fmt.Errorf("unknown expression %T", e)
}
