package skel

import (
	"testing"
	"testing/quick"

	"discovery/internal/machine"
)

func ctx() *Context { return NewContext(machine.CPUCentric()) }

func TestMap(t *testing.T) {
	in := []int{1, 2, 3, 4, 5}
	out := Map(ctx(), in, Cost{}, func(x int) int { return x * x })
	want := []int{1, 4, 9, 16, 25}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestMapIndex(t *testing.T) {
	in := make([]int, 100)
	out := MapIndex(ctx(), in, Cost{}, func(i, _ int) int { return i * 2 })
	for i := range out {
		if out[i] != i*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestReduce(t *testing.T) {
	in := make([]float64, 1000)
	for i := range in {
		in[i] = 1
	}
	got := Reduce(ctx(), in, Cost{}, 0, func(a, b float64) float64 { return a + b })
	if got != 1000 {
		t.Errorf("sum = %g, want 1000", got)
	}
}

func TestMapReduce(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	got := MapReduce(ctx(), in, Cost{},
		func(x float64) float64 { return x * x },
		0, func(a, b float64) float64 { return a + b })
	if got != 30 {
		t.Errorf("sum of squares = %g, want 30", got)
	}
}

func TestMap2(t *testing.T) {
	a := []int{1, 2, 3}
	b := []int{10, 20, 30}
	out := Map2(ctx(), a, b, Cost{}, func(x, y int) int { return x + y })
	if out[0] != 11 || out[2] != 33 {
		t.Errorf("Map2 = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not rejected")
		}
	}()
	Map2(ctx(), a, b[:2], Cost{}, func(x, y int) int { return 0 })
}

// Property: parallel Reduce agrees with sequential folding for integer
// addition (exactly associative).
func TestReduceMatchesSequentialProperty(t *testing.T) {
	prop := func(raw []int32) bool {
		in := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			in[i] = int64(v)
			want += int64(v)
		}
		c := ctx()
		c.Backend = CPU
		got := Reduce(c, in, Cost{}, 0, func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBackendSelection(t *testing.T) {
	// Tiny inputs run sequentially; big compute-heavy inputs pick CPU on
	// the CPU-centric machine and GPU on the GPU-centric machine.
	heavy := Cost{WorkPerElement: 128, BytesPerElement: 512}
	big := make([]int, 200000)

	c := NewContext(machine.CPUCentric())
	Map(c, []int{1, 2}, heavy, func(x int) int { return x })
	if c.LastBackend() != Sequential {
		t.Errorf("tiny input chose %v", c.LastBackend())
	}
	Map(c, big, heavy, func(x int) int { return x })
	if c.LastBackend() != CPU {
		t.Errorf("CPU-centric chose %v, want cpu", c.LastBackend())
	}

	g := NewContext(machine.GPUCentric())
	Map(g, big, heavy, func(x int) int { return x })
	if g.LastBackend() != GPU {
		t.Errorf("GPU-centric chose %v, want gpu", g.LastBackend())
	}
}

func TestForcedBackend(t *testing.T) {
	c := NewContext(machine.CPUCentric())
	c.Backend = GPU
	Map(c, make([]int, 10), Cost{}, func(x int) int { return x })
	if c.LastBackend() != GPU {
		t.Error("forced backend ignored")
	}
}

func TestSimulatedTimeAccumulates(t *testing.T) {
	c := ctx()
	if c.SimulatedTime() != 0 {
		t.Error("fresh context has nonzero time")
	}
	Map(c, make([]int, 1000), Cost{WorkPerElement: 1}, func(x int) int { return x })
	t1 := c.SimulatedTime()
	if t1 <= 0 {
		t.Error("no time accounted")
	}
	Map(c, make([]int, 1000), Cost{WorkPerElement: 1}, func(x int) int { return x })
	if c.SimulatedTime() <= t1 {
		t.Error("time did not accumulate")
	}
	if c.Calls() != 2 {
		t.Errorf("calls = %d", c.Calls())
	}
	c.Reset()
	if c.SimulatedTime() != 0 || c.Calls() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestBackendStrings(t *testing.T) {
	for b, want := range map[BackendKind]string{
		Auto: "auto", Sequential: "sequential", CPU: "cpu", GPU: "gpu",
		BackendKind(99): "unknown",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	c := ctx()
	if got := Reduce(c, nil, Cost{}, 42, func(a, b int) int { return a + b }); got != 42 {
		t.Errorf("empty reduce = %d, want identity", got)
	}
	if got := Reduce(c, []int{7}, Cost{}, 0, func(a, b int) int { return a + b }); got != 7 {
		t.Errorf("single reduce = %d", got)
	}
}
