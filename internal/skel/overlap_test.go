package skel

import (
	"testing"
	"testing/quick"
)

func TestMapOverlapBlur(t *testing.T) {
	c := ctx()
	in := []float64{3, 6, 9, 12, 15}
	got := MapOverlap(c, in, 1, Cost{}, func(w []float64) float64 {
		return (w[0] + w[1] + w[2]) / 3
	})
	// Edges clamp: (3+3+6)/3 = 4 and (12+15+15)/3 = 14.
	want := []float64{4, 6, 9, 12, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("blur[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMapOverlapRadiusZero(t *testing.T) {
	c := ctx()
	in := []int{1, 2, 3}
	got := MapOverlap(c, in, 0, Cost{}, func(w []int) int { return w[0] * 2 })
	for i, v := range []int{2, 4, 6} {
		if got[i] != v {
			t.Errorf("got[%d] = %d", i, got[i])
		}
	}
}

func TestMapOverlapNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative radius accepted")
		}
	}()
	MapOverlap(ctx(), []int{1}, -1, Cost{}, func(w []int) int { return 0 })
}

// Property: the parallel stencil equals the sequential one.
func TestMapOverlapMatchesSequentialProperty(t *testing.T) {
	prop := func(raw []int16, r8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		radius := int(r8 % 4)
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		sum := func(w []int64) int64 {
			var s int64
			for _, v := range w {
				s += v
			}
			return s
		}
		cSeq := ctx()
		cSeq.Backend = Sequential
		cPar := ctx()
		cPar.Backend = CPU
		a := MapOverlap(cSeq, in, radius, Cost{}, sum)
		b := MapOverlap(cPar, in, radius, Cost{}, sum)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
