package skel

import (
	"testing"
	"testing/quick"
)

func TestScanInclusive(t *testing.T) {
	c := ctx()
	in := []int{1, 2, 3, 4, 5}
	got := Scan(c, in, Cost{}, 0, func(a, b int) int { return a + b })
	want := []int{1, 3, 6, 10, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEmptyAndSingle(t *testing.T) {
	c := ctx()
	if got := Scan(c, nil, Cost{}, 7, func(a, b int) int { return a + b }); len(got) != 0 {
		t.Error("empty scan should be empty")
	}
	got := Scan(c, []int{5}, Cost{}, 2, func(a, b int) int { return a + b })
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("single scan = %v", got)
	}
}

// Property: the parallel scan agrees with the sequential fold for exactly
// associative integer addition, at every prefix.
func TestScanMatchesSequentialProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		c := ctx()
		c.Backend = CPU
		got := Scan(c, in, Cost{}, 0, func(a, b int64) int64 { return a + b })
		var acc int64
		for i, v := range in {
			acc += v
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFilter(t *testing.T) {
	c := ctx()
	in := []int{5, 2, 9, 1, 7, 4}
	got := Filter(c, in, Cost{}, func(x int) bool { return x > 4 })
	want := []int{5, 9, 7}
	if len(got) != len(want) {
		t.Fatalf("filter = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("filter[%d] = %d, want %d (order must be preserved)", i, got[i], want[i])
		}
	}
}

// Property: parallel Filter equals the sequential filter, including order.
func TestFilterMatchesSequentialProperty(t *testing.T) {
	prop := func(raw []int8) bool {
		in := make([]int, len(raw))
		for i, v := range raw {
			in[i] = int(v)
		}
		keep := func(x int) bool { return x%3 == 0 }
		c := ctx()
		c.Backend = CPU
		got := Filter(c, in, Cost{}, keep)
		var want []int
		for _, v := range in {
			if keep(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScanFilterAccountTime(t *testing.T) {
	c := ctx()
	Scan(c, make([]int, 100), Cost{}, 0, func(a, b int) int { return a + b })
	Filter(c, make([]int, 100), Cost{}, func(int) bool { return true })
	if c.Calls() != 2 || c.SimulatedTime() <= 0 {
		t.Errorf("calls=%d time=%g", c.Calls(), c.SimulatedTime())
	}
}
