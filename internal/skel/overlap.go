package skel

// MapOverlap is the stencil skeleton (SkePU's MapOverlap): each output
// element is computed from its input element and a fixed-radius
// neighbourhood. It is the modernization target for the stencil patterns
// the extension matcher finds (patterns.MatchStencil). Edges use clamping
// (the first/last element repeats), SkePU's duplicate-edge policy.

// MapOverlap applies f to a sliding window of 2*radius+1 elements centred
// on each input element. The window slice passed to f is reused between
// calls on the same worker; f must not retain it.
func MapOverlap[T, R any](c *Context, in []T, radius int, cost Cost, f func(window []T) R) []R {
	if radius < 0 {
		panic("skel: MapOverlap radius must be non-negative")
	}
	kind := c.choose(len(in), cost)
	out := make([]R, len(in))
	width := 2*radius + 1
	run := func(lo, hi int) {
		window := make([]T, width)
		for i := lo; i < hi; i++ {
			for k := -radius; k <= radius; k++ {
				j := i + k
				if j < 0 {
					j = 0
				}
				if j >= len(in) {
					j = len(in) - 1
				}
				window[k+radius] = in[j]
			}
			out[i] = f(window)
		}
	}
	if kind == Sequential || len(in) < 2 {
		run(0, len(in))
	} else {
		c.parallelFor(len(in), run)
	}
	return out
}
