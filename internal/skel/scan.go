package skel

import "sync"

// Scan and Filter skeletons, completing the library's data-parallel core
// (SkePU 2 provides the same set). Scan's parallel backend uses the
// classic two-phase arrangement: per-block reductions, an exclusive scan
// of the block sums, then per-block rescans — structurally the same
// partial/final split as the paper's tiled reduction.

// Scan returns the inclusive prefix combination of in under the
// associative operator op with identity id.
func Scan[T any](c *Context, in []T, cost Cost, id T, op func(T, T) T) []T {
	kind := c.choose(len(in), cost)
	out := make([]T, len(in))
	if kind == Sequential || len(in) < 2 {
		acc := id
		for i, v := range in {
			acc = op(acc, v)
			out[i] = acc
		}
		return out
	}
	workers := c.workers()
	if workers > len(in) {
		workers = len(in)
	}
	chunk := (len(in) + workers - 1) / workers
	type block struct{ lo, hi int }
	var blocks []block
	for lo := 0; lo < len(in); lo += chunk {
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		blocks = append(blocks, block{lo, hi})
	}
	// Phase 1: per-block totals.
	totals := make([]T, len(blocks))
	var wg sync.WaitGroup
	for bi, blk := range blocks {
		wg.Add(1)
		go func(bi int, blk block) {
			defer wg.Done()
			acc := id
			for i := blk.lo; i < blk.hi; i++ {
				acc = op(acc, in[i])
			}
			totals[bi] = acc
		}(bi, blk)
	}
	wg.Wait()
	// Phase 2: exclusive scan of the block totals (sequential; one value
	// per block).
	offsets := make([]T, len(blocks))
	acc := id
	for bi := range blocks {
		offsets[bi] = acc
		acc = op(acc, totals[bi])
	}
	// Phase 3: per-block rescan with the block offset.
	for bi, blk := range blocks {
		wg.Add(1)
		go func(bi int, blk block) {
			defer wg.Done()
			acc := offsets[bi]
			for i := blk.lo; i < blk.hi; i++ {
				acc = op(acc, in[i])
				out[i] = acc
			}
		}(bi, blk)
	}
	wg.Wait()
	return out
}

// Filter returns the elements of in for which keep returns true,
// preserving order. The parallel backend marks in parallel and compacts
// with a scan of the marks.
func Filter[T any](c *Context, in []T, cost Cost, keep func(T) bool) []T {
	kind := c.choose(len(in), cost)
	if kind == Sequential || len(in) < 2 {
		var out []T
		for _, v := range in {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	marks := make([]int, len(in))
	c.parallelFor(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(in[i]) {
				marks[i] = 1
			}
		}
	})
	// Exclusive positions via an inclusive scan shifted by one.
	total := 0
	pos := make([]int, len(in))
	for i, m := range marks {
		pos[i] = total
		total += m
	}
	out := make([]T, total)
	c.parallelFor(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if marks[i] == 1 {
				out[pos[i]] = in[i]
			}
		}
	})
	return out
}
