// Package skel is a parallel pattern (algorithmic skeleton) library in the
// style of SkePU 2 [16]: Map, Reduce, and MapReduce skeletons with
// pluggable backends. Code expressed against these skeletons is what the
// paper calls "modernized": the same call runs sequentially, across CPU
// threads, or on a GPU, chosen automatically per call from the machine
// model — which is exactly how the modernized streamcluster of §6.3
// "seamlessly capitalizes on the strengths of different hardware
// architectures".
//
// Skeleton calls execute for real on the host (goroutine-parallel for the
// CPU and GPU backends) and, in parallel, account simulated time on the
// configured machine.Architecture, so the portability study is
// deterministic while its results remain computed values.
package skel

import (
	"runtime"
	"sync"

	"discovery/internal/machine"
)

// BackendKind selects how a skeleton executes.
type BackendKind int

// Backends.
const (
	// Auto picks the fastest backend for each call on the context's
	// architecture (SkePU's auto-tuned hybrid execution).
	Auto BackendKind = iota
	// Sequential runs on one CPU core.
	Sequential
	// CPU runs on all CPU cores.
	CPU
	// GPU runs on the architecture's GPU.
	GPU
)

// String names the backend.
func (b BackendKind) String() string {
	switch b {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	}
	return "unknown"
}

// Cost characterizes one skeleton call for the machine model.
type Cost struct {
	// WorkPerElement is the per-element compute work (machine units).
	WorkPerElement float64
	// BytesPerElement is the per-element host-device traffic.
	BytesPerElement float64
}

// DefaultCost is assumed when the caller provides a zero Cost.
var DefaultCost = Cost{WorkPerElement: 1, BytesPerElement: 8}

// Context carries the target architecture, backend policy, and accumulated
// simulated time across skeleton calls.
type Context struct {
	Arch    *machine.Architecture
	Backend BackendKind
	// CPUEfficiency is the parallel efficiency of the skeleton CPU
	// backend (slightly below hand-tuned threading; default 0.8).
	CPUEfficiency float64
	// GPUOccupancy derates GPU execution for code not tuned to the device
	// (default 1.0).
	GPUOccupancy float64
	// Workers bounds real host parallelism (default GOMAXPROCS).
	Workers int

	mu       sync.Mutex
	simTime  float64
	calls    int
	lastKind BackendKind
}

// NewContext returns a context targeting the architecture with automatic
// backend selection.
func NewContext(arch *machine.Architecture) *Context {
	return &Context{Arch: arch, Backend: Auto, CPUEfficiency: 0.8, GPUOccupancy: 1.0}
}

// SimulatedTime returns the simulated seconds accumulated so far.
func (c *Context) SimulatedTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}

// Calls returns the number of skeleton invocations so far.
func (c *Context) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// LastBackend returns the backend chosen by the most recent call.
func (c *Context) LastBackend() BackendKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastKind
}

// Reset clears the accumulated simulated time.
func (c *Context) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simTime = 0
	c.calls = 0
}

func (c *Context) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// choose picks the backend and accounts its simulated time.
func (c *Context) choose(n int, cost Cost) BackendKind {
	if cost.WorkPerElement == 0 {
		cost = DefaultCost
	}
	w := machine.Workload{
		Elements:        n,
		WorkPerElement:  cost.WorkPerElement,
		BytesPerElement: cost.BytesPerElement,
	}
	kind := c.Backend
	seqT := c.Arch.SeqTime(w)
	cpuT := c.Arch.CPUTime(w, c.Arch.CPUCores, c.CPUEfficiency)
	gpuT := c.Arch.GPUTime(w, c.GPUOccupancy)
	if kind == Auto {
		kind = Sequential
		best := seqT
		if cpuT < best {
			kind, best = CPU, cpuT
		}
		if gpuT < best {
			kind = GPU
		}
	}
	var t float64
	switch kind {
	case Sequential:
		t = seqT
	case CPU:
		t = cpuT
	case GPU:
		t = gpuT
	}
	c.mu.Lock()
	c.simTime += t
	c.calls++
	c.lastKind = kind
	c.mu.Unlock()
	return kind
}

// parallelFor executes body(i) for i in [0, n) across the host's workers.
func (c *Context) parallelFor(n int, body func(lo, hi int)) {
	workers := c.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies f to every element of in, returning the results.
func Map[T, R any](c *Context, in []T, cost Cost, f func(T) R) []R {
	kind := c.choose(len(in), cost)
	out := make([]R, len(in))
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(in[i])
		}
	}
	if kind == Sequential {
		run(0, len(in))
	} else {
		c.parallelFor(len(in), run)
	}
	return out
}

// MapIndex applies f to every index and element of in.
func MapIndex[T, R any](c *Context, in []T, cost Cost, f func(int, T) R) []R {
	kind := c.choose(len(in), cost)
	out := make([]R, len(in))
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(i, in[i])
		}
	}
	if kind == Sequential {
		run(0, len(in))
	} else {
		c.parallelFor(len(in), run)
	}
	return out
}

// Reduce combines in with the associative operator op, starting from the
// identity id. Parallel backends use the tiled arrangement (per-worker
// partial reductions combined by a final reduction — paper Figure 3).
func Reduce[T any](c *Context, in []T, cost Cost, id T, op func(T, T) T) T {
	kind := c.choose(len(in), cost)
	if kind == Sequential || len(in) < 2 {
		acc := id
		for _, v := range in {
			acc = op(acc, v)
		}
		return acc
	}
	workers := c.workers()
	if workers > len(in) {
		workers = len(in)
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	chunk := (len(in) + workers - 1) / workers
	slot := 0
	for lo := 0; lo < len(in); lo += chunk {
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, in[i])
			}
			partials[slot] = acc
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	acc := id
	for _, v := range partials[:slot] {
		acc = op(acc, v)
	}
	return acc
}

// MapReduce fuses a map and a reduction over the same elements (the
// compound pattern the paper's Figure 2b modernization uses).
func MapReduce[T, R any](c *Context, in []T, cost Cost, f func(T) R, id R, op func(R, R) R) R {
	kind := c.choose(len(in), cost)
	if kind == Sequential || len(in) < 2 {
		acc := id
		for _, v := range in {
			acc = op(acc, f(v))
		}
		return acc
	}
	workers := c.workers()
	if workers > len(in) {
		workers = len(in)
	}
	partials := make([]R, workers)
	var wg sync.WaitGroup
	chunk := (len(in) + workers - 1) / workers
	slot := 0
	for lo := 0; lo < len(in); lo += chunk {
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, f(in[i]))
			}
			partials[slot] = acc
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	acc := id
	for _, v := range partials[:slot] {
		acc = op(acc, v)
	}
	return acc
}

// Map2 applies f pairwise to two equal-length slices (a zipped map).
func Map2[A, B, R any](c *Context, a []A, b []B, cost Cost, f func(A, B) R) []R {
	if len(a) != len(b) {
		panic("skel: Map2 length mismatch")
	}
	kind := c.choose(len(a), cost)
	out := make([]R, len(a))
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(a[i], b[i])
		}
	}
	if kind == Sequential {
		run(0, len(a))
	} else {
		c.parallelFor(len(a), run)
	}
	return out
}
