package discovery

// One benchmark per table and figure of the paper's evaluation (§6). Each
// regenerates its experiment and reports the headline quantities as
// benchmark metrics; run with -v to get the full text tables:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable3 -v
//
// The cmd/experiments binary prints the same tables interactively.

import (
	"testing"

	"discovery/internal/core"
	"discovery/internal/experiments"
	"discovery/internal/sc"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func benchOpts() core.Options {
	return core.Options{Workers: 0}
}

// BenchmarkTable1_IterativeTrace regenerates Table 1: the iterative
// pattern finding trace on the §2 motivating example.
func BenchmarkTable1_IterativeTrace(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		text, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + text)
	}
}

// BenchmarkTable3_Effectiveness regenerates Table 3: found and missed
// patterns across the Starbench suite. Metrics: expected patterns found
// (paper: 36) and missed as expected (paper: 6).
func BenchmarkTable3_Effectiveness(b *testing.B) {
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTable3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Found), "found")
	b.ReportMetric(float64(res.Missed), "missed")
	b.ReportMetric(float64(res.IterationProfile[1]), "it1")
	b.ReportMetric(float64(res.IterationProfile[2]), "it2")
	b.ReportMetric(float64(res.IterationProfile[3]), "it3")
	if testing.Verbose() {
		b.Log("\n" + res.Text())
	}
}

// BenchmarkAccuracy_AdditionalPatterns regenerates the §6.1 accuracy
// study. Metrics: true and false additional patterns (paper: 48 and 2).
func BenchmarkAccuracy_AdditionalPatterns(b *testing.B) {
	var res *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAccuracy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.True), "true")
	b.ReportMetric(float64(res.False), "false")
	if testing.Verbose() {
		b.Log("\n" + res.Text())
	}
}

// BenchmarkFigure7_Scalability regenerates Figure 7: pattern finding time
// by DDG size. Metric: the fitted log-log slope (paper: linear, 1.0).
func BenchmarkFigure7_Scalability(b *testing.B) {
	var res *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure7(benchOpts(), []int64{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Slope, "loglog-slope")
	if testing.Verbose() {
		b.Log("\n" + res.Text())
	}
}

// BenchmarkFigure7_PerBenchmark times tracing + finding per benchmark at
// the analysis inputs — the individual points of Figure 7.
func BenchmarkFigure7_PerBenchmark(b *testing.B) {
	for _, bench := range starbench.All() {
		for _, v := range starbench.Versions() {
			bench, v := bench, v
			b.Run(bench.Name+"/"+string(v), func(b *testing.B) {
				var nodes int
				for i := 0; i < b.N; i++ {
					built := bench.Build(v, bench.Analysis)
					tr, err := trace.Run(built.Prog)
					if err != nil {
						b.Fatal(err)
					}
					core.Find(tr.Graph, benchOpts())
					nodes = tr.Graph.NumNodes()
				}
				b.ReportMetric(float64(nodes), "ddg-nodes")
			})
		}
	}
}

// BenchmarkFindFixpoint times the pattern-finding fixpoint on a traced
// Starbench workload, cold (a fresh view cache every run) and warm (one
// cache shared across runs of the same trace). The warm/cold gap is what
// the content-addressed solve cache buys repeated analyses of an
// unchanged trace; cmd/experiments -run bench measures the same thing
// with medians across more workloads (BENCH_find.json).
func BenchmarkFindFixpoint(b *testing.B) {
	bench := starbench.ByName("streamcluster")
	built := bench.Build(starbench.Pthreads, bench.Analysis)
	tr, err := trace.Run(built.Prog)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.Find(tr.Graph, benchOpts())
		}
		b.ReportMetric(float64(len(res.Patterns)), "patterns")
	})
	b.Run("warm", func(b *testing.B) {
		opts := benchOpts()
		opts.Cache = core.NewViewCache()
		core.Find(tr.Graph, opts) // prime outside the timed loop
		b.ResetTimer()
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.Find(tr.Graph, opts)
		}
		b.ReportMetric(float64(len(res.Patterns)), "patterns")
		hits, misses, _ := res.CacheStats()
		b.ReportMetric(float64(hits), "cache-hits")
		b.ReportMetric(float64(misses), "cache-misses")
	})
}

// BenchmarkFigure8_Portability regenerates Figure 8: the streamcluster
// portability study. Metrics: the six speedups.
func BenchmarkFigure8_Portability(b *testing.B) {
	var rows []sc.Figure8Row
	for i := 0; i < b.N; i++ {
		rows = sc.Figure8()
	}
	for _, r := range rows {
		name := "cpu-centric/"
		if r.Arch[0] == 'G' {
			name = "gpu-centric/"
		}
		switch r.Impl {
		case "Starbench legacy (Pthreads)":
			name += "legacy-x"
		case "Starbench modernized (SkePU)":
			name += "modernized-x"
		default:
			name += "rodinia-x"
		}
		b.ReportMetric(r.Speedup, name)
	}
	if testing.Verbose() {
		b.Log("\n" + experiments.Figure8Text())
	}
}

// BenchmarkFigure8_RealExecution measures the actual host-parallel
// execution of the streamcluster variants (correctness companion to the
// simulated Figure 8).
func BenchmarkFigure8_RealExecution(b *testing.B) {
	pts := sc.GeneratePoints(20000, 32)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc.Sequential(pts)
		}
	})
	b.Run("legacy-4threads", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc.Legacy(pts, 4)
		}
	})
}

// BenchmarkPhases regenerates the §6.2 phase split. Metrics: tracing and
// matching fractions of total analysis time.
func BenchmarkPhases(b *testing.B) {
	var res *experiments.PhasesResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunPhases(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.TracingFraction, "tracing-%")
	b.ReportMetric(100*res.MatchingFraction, "matching-%")
	b.ReportMetric(100*(res.DDGGrowth-1), "pthreads-ddg-growth-%")
	if testing.Verbose() {
		b.Log("\n" + res.Text())
	}
}

// BenchmarkSimplify regenerates the §5 simplification factor (paper:
// 3.82x average).
func BenchmarkSimplify(b *testing.B) {
	var res *experiments.SimplifyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSimplify(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Average, "avg-factor-x")
	if testing.Verbose() {
		b.Log("\n" + res.Text())
	}
}

// BenchmarkAblation_DesignChoices regenerates the §5 ablations: how many
// expected patterns survive with each design choice disabled.
func BenchmarkAblation_DesignChoices(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunAblations()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "full pipeline":
			b.ReportMetric(float64(r.Found), "full-found")
		case "no iteration (single match pass)":
			b.ReportMetric(float64(r.Found), "noiter-found")
		case "no decomposition":
			b.ReportMetric(float64(r.Skipped), "nodecomp-skipped")
		}
	}
	if testing.Verbose() {
		b.Log("\n" + experiments.AblationsText(rows))
	}
}

// BenchmarkTable2_Inputs renders Table 2 (trivially fast; included so
// every table has a regeneration target).
func BenchmarkTable2_Inputs(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		text = experiments.Table2()
	}
	if testing.Verbose() {
		b.Log("\n" + text)
	}
}
