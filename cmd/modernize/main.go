// Command modernize demonstrates the automated port (the step the paper's
// §6.3 leaves as future work): it analyzes a sequential benchmark, shows
// the skeleton-call suggestions for the found patterns, then actually
// rewrites the chosen map loop into threaded IR, re-runs the program, and
// verifies the outputs are unchanged.
//
// Usage:
//
//	modernize -bench rgbyuv -threads 4
//	modernize -bench rgbyuv -threads 2 -show-listing
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"discovery/internal/core"
	"discovery/internal/ddg"
	"discovery/internal/mir"
	"discovery/internal/modernize"
	"discovery/internal/patterns"
	"discovery/internal/starbench"
	"discovery/internal/trace"
	"discovery/internal/vm"
)

func main() {
	var (
		benchName = flag.String("bench", "rgbyuv", "benchmark to modernize (sequential version)")
		threads   = flag.Int64("threads", 4, "threads for the parallelized loop")
		showList  = flag.Bool("show-listing", false, "print the modernized source listing")
	)
	flag.Parse()

	b := starbench.ByName(*benchName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}

	// 1. Analyze the sequential version.
	built := b.Build(starbench.Seq, b.Analysis)
	tr, err := trace.Run(built.Prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := core.Find(tr.Graph, core.Options{VerifyMatches: true})
	fmt.Printf("analysis of %s/seq found %d patterns:\n", b.Name, len(res.Patterns))
	for i, p := range res.Patterns {
		fmt.Printf("  [%d] %s — %s\n", i, p.Kind, modernize.Suggest(res.Graph, p))
	}

	// 2. Pick the largest plain map and locate its loop.
	var target *patterns.Pattern
	for _, p := range res.Patterns {
		if p.Kind == patterns.KindMap {
			if target == nil || p.Nodes().Len() > target.Nodes().Len() {
				target = p
			}
		}
	}
	if target == nil {
		fmt.Println("no plain map to parallelize; nothing to do")
		return
	}
	loop, ok := innermostCommonLoop(res.Graph, target)
	if !ok {
		fmt.Println("the map does not sit in a single loop; nothing to do")
		return
	}

	// 3. Reference run, then rewrite a fresh build and compare.
	ref, err := vm.New(built.Prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := ref.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mod := b.Build(starbench.Seq, b.Analysis)
	if err := modernize.ParallelizeMap(mod.Prog, loop, *threads); err != nil {
		fmt.Fprintf(os.Stderr, "modernization failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nparallelized loop %d across %d threads\n", loop, *threads)
	m, err := vm.New(mod.Prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modernized program failed: %v\n", err)
		os.Exit(1)
	}
	if _, err := m.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "modernized program failed: %v\n", err)
		os.Exit(1)
	}

	// 4. Verify outputs.
	sizes := map[string]int64{}
	for _, s := range built.Prog.Statics {
		sizes[s.Name] = s.Size
	}
	for _, out := range b.Outputs {
		b1, err1 := ref.StaticBase(out)
		b2, err2 := m.StaticBase(out)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "output %q missing: %v %v\n", out, err1, err2)
			os.Exit(1)
		}
		for i := int64(0); i < sizes[out]; i++ {
			av, err1 := ref.HeapAt(b1 + i)
			cv, err2 := m.HeapAt(b2 + i)
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "output %q unreadable at %d: %v %v\n", out, i, err1, err2)
				os.Exit(1)
			}
			a, c := av.Float(), cv.Float()
			if math.Abs(a-c) > 1e-9*(1+math.Abs(a)) {
				fmt.Fprintf(os.Stderr, "MISMATCH %s[%d]: %g vs %g\n", out, i, a, c)
				os.Exit(1)
			}
		}
	}
	fmt.Println("outputs verified identical to the sequential original")

	if *showList {
		fmt.Println()
		fmt.Print(mod.Prog.String())
	}
}

// innermostCommonLoop returns the innermost static loop containing every
// node of the pattern. Scope chains are innermost-first, so the common
// loop closest to the nodes is the one with the smallest walk distance.
func innermostCommonLoop(g *ddg.Graph, p *patterns.Pattern) (mir.LoopID, bool) {
	counts := map[mir.LoopID]int{}
	minDist := map[mir.LoopID]int{}
	nodes := p.Nodes()
	for _, u := range nodes {
		d := 0
		for f := g.ScopeOf(u); f != nil; f = f.Parent {
			counts[f.Loop]++
			d++
			if cur, ok := minDist[f.Loop]; !ok || d < cur {
				minDist[f.Loop] = d
			}
		}
	}
	best, bestDist := mir.LoopID(0), 1<<30
	for loop, c := range counts {
		if c == nodes.Len() && minDist[loop] < bestDist {
			best, bestDist = loop, minDist[loop]
		}
	}
	return best, bestDist < 1<<30
}
