// Command starbench runs the MIR re-implementations of the Starbench
// benchmarks on the shared-memory virtual machine, without instrumentation
// — useful for validating kernels and comparing the sequential and
// Pthreads versions.
//
// Usage:
//
//	starbench -list
//	starbench -bench kmeans
//	starbench -bench streamcluster -version seq -source
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"discovery/internal/starbench"
	"discovery/internal/vm"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to run (empty = all)")
		version   = flag.String("version", "", "version to run: seq, pthreads, or empty for both")
		source    = flag.Bool("source", false, "print the benchmark's source listing instead of running")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range starbench.All() {
			fmt.Printf("%-14s analysis: %-28s reference: %s\n",
				b.Name, b.AnalysisDesc, b.ReferenceDesc)
		}
		return
	}

	benches := starbench.All()
	if *benchName != "" {
		b := starbench.ByName(*benchName)
		if b == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
		benches = []*starbench.Benchmark{b}
	}
	versions := starbench.Versions()
	if *version != "" {
		versions = []starbench.Version{starbench.Version(*version)}
	}

	for _, b := range benches {
		for _, v := range versions {
			built := b.Build(v, b.Analysis)
			if *source {
				fmt.Print(built.Prog.String())
				continue
			}
			m, err := vm.New(built.Prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s failed: %v\n", b.Name, v, err)
				os.Exit(1)
			}
			start := time.Now()
			if _, err := m.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s failed: %v\n", b.Name, v, err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %-9s  %8d ops in %8v  outputs:", b.Name, v,
				m.Ops(), time.Since(start).Round(time.Microsecond))
			for _, out := range b.Outputs {
				base, err := m.StaticBase(out)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s: %v\n", b.Name, v, err)
					os.Exit(1)
				}
				val, err := m.HeapAt(base)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s: %v\n", b.Name, v, err)
					os.Exit(1)
				}
				fmt.Printf(" %s[0]=%v", out, val)
			}
			fmt.Println()
		}
	}
}
