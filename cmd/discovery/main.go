// Command discovery traces a Starbench benchmark, runs the iterative
// pattern finder on its dynamic dataflow graph, and reports the found
// patterns against the source listing (text or HTML, in the style of the
// paper's Figure 6 reports).
//
// Usage:
//
//	discovery -bench streamcluster -version pthreads -format text
//	discovery -bench rot-cc -format html > report.html
//	discovery -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"discovery/internal/core"
	"discovery/internal/modernize"
	"discovery/internal/report"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func main() {
	var (
		benchName  = flag.String("bench", "streamcluster", "benchmark to analyze")
		version    = flag.String("version", "pthreads", "benchmark version: seq or pthreads")
		format     = flag.String("format", "summary", "output format: summary, text, html, or json")
		workers    = flag.Int("workers", 0, "parallel matching workers (0 = all cores)")
		verify     = flag.Bool("verify", true, "re-verify matches against the unrelaxed definitions")
		extensions = flag.Bool("extensions", false, "enable the future-work pattern kinds (stencil, pipeline, tree reduction)")
		budget     = flag.Duration("budget", 0, "global wall-clock budget for pattern finding (0 = none)")
		solverBudg = flag.Duration("solver-budget", 0, "per-solve constraint solver timeout (0 = the 60s default)")
		solverStep = flag.Int64("solver-steps", 0, "deterministic per-solve step limit, nodes+propagations (0 = none)")
		noCache    = flag.Bool("no-cache", false, "disable the view-verdict solve cache (escape hatch; every solve runs)")
		cacheStats = flag.Bool("cache-stats", false, "print view cache hit/miss/skip counts to stderr")
		check      = flag.Bool("check", false, "verify DDG structural invariants after tracing and after simplification")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	lookup := func(name string) *starbench.Benchmark {
		if b := starbench.ByName(name); b != nil {
			return b
		}
		for _, b := range starbench.Extended() {
			if b.Name == name {
				return b
			}
		}
		return nil
	}

	if *list {
		for _, b := range starbench.All() {
			fmt.Printf("%-14s analysis: %-28s reference: %s\n",
				b.Name, b.AnalysisDesc, b.ReferenceDesc)
		}
		for _, b := range starbench.Extended() {
			fmt.Printf("%-14s analysis: %-28s reference: %s  (extended; use -extensions)\n",
				b.Name, b.AnalysisDesc, b.ReferenceDesc)
		}
		return
	}

	b := lookup(*benchName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *benchName)
		os.Exit(1)
	}
	v := starbench.Version(*version)
	if v != starbench.Seq && v != starbench.Pthreads {
		fmt.Fprintf(os.Stderr, "unknown version %q (seq or pthreads)\n", *version)
		os.Exit(1)
	}

	built := b.Build(v, b.Analysis)
	start := time.Now()
	tr, err := trace.Run(built.Prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracing failed: %v\n", err)
		os.Exit(1)
	}
	traceTime := time.Since(start)
	if *check {
		if err := tr.Graph.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "traced DDG failed invariant checking: %v\n", err)
			os.Exit(1)
		}
	}
	res := core.Find(tr.Graph, core.Options{
		Workers: *workers, VerifyMatches: *verify, Extensions: *extensions,
		Budget: *budget, SolverBudget: *solverBudg, SolverStepLimit: *solverStep,
		DisableCache: *noCache,
	})
	if *check && res.Graph != nil && res.Graph != tr.Graph {
		if err := res.Graph.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "simplified DDG failed invariant checking: %v\n", err)
			os.Exit(1)
		}
	}
	// A truncated trace is a degraded run: surface it with the finder's
	// own diagnostics instead of pretending coverage was complete.
	if d := tr.Diagnostic(); d != nil {
		res.Failures = append(res.Failures, d)
	}
	if *cacheStats {
		line := report.CacheStats(res)
		if line == "" {
			line = "view cache: disabled"
		}
		fmt.Fprintln(os.Stderr, line)
	}

	switch *format {
	case "summary":
		fmt.Printf("%s/%s (input: %s)\n", b.Name, v, b.AnalysisDesc)
		fmt.Printf("traced %d nodes in %v; pattern finding took %v\n",
			tr.Graph.NumNodes(), traceTime.Round(time.Millisecond),
			res.Phases.Total().Round(time.Millisecond))
		fmt.Print(report.Summary(res))
		if len(res.Patterns) > 0 {
			fmt.Println("modernization suggestions (paper Figure 2b):")
			for _, s := range modernize.SuggestAll(res.Graph, res.Patterns) {
				fmt.Printf("  %s\n", s)
			}
		}
		if sites := built.Prog.QuasiPatternSites(); len(sites) > 0 {
			fmt.Println("quasi-patterns (if-conversion would expose min/max reductions):")
			for _, pos := range sites {
				fmt.Printf("  - %s:%d\n", pos.File, pos.Line)
			}
		}
	case "text":
		fmt.Print(report.Text(built.Prog, res))
	case "html":
		fmt.Print(report.HTML(built.Prog, res))
	case "json":
		data, err := report.JSON(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json export failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}
}
