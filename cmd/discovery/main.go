// Command discovery traces a Starbench benchmark, runs the iterative
// pattern finder on its dynamic dataflow graph, and reports the found
// patterns against the source listing (text or HTML, in the style of the
// paper's Figure 6 reports).
//
// Usage:
//
//	discovery -bench streamcluster -version pthreads -format text
//	discovery -bench rot-cc -format html > report.html
//	discovery -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"discovery/internal/core"
	"discovery/internal/ddg"
	"discovery/internal/modernize"
	"discovery/internal/obs"
	"discovery/internal/report"
	"discovery/internal/sched"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func main() {
	var (
		benchName  = flag.String("bench", "streamcluster", "benchmark to analyze")
		version    = flag.String("version", "pthreads", "benchmark version: seq or pthreads")
		format     = flag.String("format", "summary", "output format: summary, text, html, or json")
		workers    = flag.Int("workers", 0, "parallel matching workers (0 = all cores)")
		schedWork  = flag.Int("sched-workers", 0, "run solves on an explicit shared scheduler pool of this size (0 = per-run pool sized by -workers)")
		verify     = flag.Bool("verify", true, "re-verify matches against the unrelaxed definitions")
		extensions = flag.Bool("extensions", false, "enable the future-work pattern kinds (stencil, pipeline, tree reduction)")
		budget     = flag.Duration("budget", 0, "global wall-clock budget for pattern finding (0 = none)")
		solverBudg = flag.Duration("solver-budget", 0, "per-solve constraint solver timeout (0 = the 60s default)")
		solverStep = flag.Int64("solver-steps", 0, "deterministic per-solve step limit, nodes+propagations (0 = none)")
		noCache    = flag.Bool("no-cache", false, "disable the view-verdict solve cache (escape hatch; every solve runs)")
		cacheStats = flag.Bool("cache-stats", false, "print view cache hit/miss/skip counts to stderr")
		noPrescr   = flag.Bool("no-prescreen", false, "disable the structural prescreen (escape hatch; every matcher runs)")
		prescrStat = flag.Bool("prescreen-stats", false, "print prescreen check/skip counts to stderr")
		restarts   = flag.Int64("solver-restarts", 0, "Luby restart slice in solver steps, with nogood recording (0 = plain DFS)")
		check      = flag.Bool("check", false, "verify DDG structural invariants after tracing and after simplification")
		memBudget  = flag.Int64("trace-memory-budget", 0, "resident DDG arc-byte budget; larger graphs page through an unlinked spill file (0 = fully resident)")
		spillDir   = flag.String("ddg-spill-dir", "", "directory for DDG spill files (default: the system temp dir)")
		noCompact  = flag.Bool("no-online-compact", false, "disable online loop-iteration compaction in the trace buffers (escape hatch; views fall back to scope-chain walks)")
		obsOn      = flag.Bool("obs", false, "record phase spans and metrics; print the phase tree to stderr")
		obsOut     = flag.String("obs-out", "", "write the observability JSON document (spans + metrics) to this file (implies -obs)")
		metrics    = flag.Bool("metrics", false, "print metrics in Prometheus text format to stderr (implies -obs)")
		pprofOut   = flag.String("pprof", "", "capture profiles around the analysis into PREFIX.cpu.pprof and PREFIX.heap.pprof")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	lookup := func(name string) *starbench.Benchmark {
		if b := starbench.ByName(name); b != nil {
			return b
		}
		for _, b := range starbench.Extended() {
			if b.Name == name {
				return b
			}
		}
		return nil
	}

	if *list {
		for _, b := range starbench.All() {
			fmt.Printf("%-14s analysis: %-28s reference: %s\n",
				b.Name, b.AnalysisDesc, b.ReferenceDesc)
		}
		for _, b := range starbench.Extended() {
			fmt.Printf("%-14s analysis: %-28s reference: %s  (extended; use -extensions)\n",
				b.Name, b.AnalysisDesc, b.ReferenceDesc)
		}
		return
	}

	b := lookup(*benchName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *benchName)
		os.Exit(1)
	}
	v := starbench.Version(*version)
	if v != starbench.Seq && v != starbench.Pthreads {
		fmt.Fprintf(os.Stderr, "unknown version %q (seq or pthreads)\n", *version)
		os.Exit(1)
	}

	// Observability is opt-in: with all three flags unset the recorder is
	// the no-op singleton and every output stays byte-identical to a build
	// without the obs layer.
	rec := obs.Recorder(obs.Nop)
	var collector *obs.Collector
	if *obsOn || *obsOut != "" || *metrics {
		collector = obs.NewCollector()
		rec = collector
	}
	var prof *obs.Profiler
	if *pprofOut != "" {
		p, err := obs.StartProfile(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling failed: %v\n", err)
			os.Exit(1)
		}
		prof = p
	}

	// One umbrella span covers the whole analysis, so the exported tree has
	// a single root whose duration accounts for (nearly all of) the
	// process's wall time: trace and find nest under it.
	var analyzeSpan obs.SpanID
	if rec.Enabled() {
		analyzeSpan = rec.StartSpan("analyze", 0,
			obs.Str("bench", b.Name), obs.Str("version", string(v)))
	}

	built := b.Build(v, b.Analysis)
	builder := trace.NewBuilder()
	if *noCompact {
		builder = trace.NewBuilderNoCompact()
	}
	start := time.Now()
	tr, err := trace.RunObservedWith(builder, built.Prog, rec, analyzeSpan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracing failed: %v\n", err)
		os.Exit(1)
	}
	traceTime := time.Since(start)
	// Spill before -check so the invariant pass exercises the paged CSR —
	// the same read path the finder is about to use.
	if *memBudget > 0 {
		spillCfg := ddg.SpillConfig{Dir: *spillDir, Budget: *memBudget}
		if _, err := tr.Graph.MaybeSpill(spillCfg); err != nil {
			fmt.Fprintf(os.Stderr, "spilling traced DDG failed (continuing in core): %v\n", err)
		}
		defer tr.Graph.CloseSpill()
	}
	if *check {
		if err := tr.Graph.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "traced DDG failed invariant checking: %v\n", err)
			os.Exit(1)
		}
	}
	opts := core.Options{
		Workers: *workers, VerifyMatches: *verify, Extensions: *extensions,
		Budget: *budget, SolverBudget: *solverBudg, SolverStepLimit: *solverStep,
		DisableCache: *noCache, DisablePrescreen: *noPrescr,
		SolverRestartSlice: *restarts, Obs: rec, ObsParent: analyzeSpan,
		SpillBudget: *memBudget, SpillDir: *spillDir,
	}
	// -sched-workers exercises the daemon's configuration from the CLI: an
	// explicit shared pool instead of the finder's private per-run one.
	// With a single run the two are equivalent in output (that equivalence
	// is tested); the flag exists to reproduce and profile the shared-pool
	// code path outside the server.
	if *schedWork > 0 {
		pool := sched.NewPool(*schedWork, rec)
		defer pool.Close()
		opts.Scheduler = pool
	}
	res := core.Find(tr.Graph, opts)
	defer res.Graph.CloseSpill()
	if rec.Enabled() {
		rec.EndSpan(analyzeSpan,
			obs.Int("patterns", int64(len(res.Patterns))))
	}
	if *check && res.Graph != nil && res.Graph != tr.Graph {
		if err := res.Graph.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "simplified DDG failed invariant checking: %v\n", err)
			os.Exit(1)
		}
	}
	// A truncated trace is a degraded run: surface it with the finder's
	// own diagnostics instead of pretending coverage was complete.
	if d := tr.Diagnostic(); d != nil {
		res.Failures = append(res.Failures, d)
	}
	if *cacheStats {
		line := report.CacheStats(res)
		if line == "" {
			line = "view cache: disabled"
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if *prescrStat {
		line := report.PrescreenStats(res)
		if line == "" {
			line = "prescreen: disabled"
		}
		fmt.Fprintln(os.Stderr, line)
	}

	switch *format {
	case "summary":
		fmt.Printf("%s/%s (input: %s)\n", b.Name, v, b.AnalysisDesc)
		fmt.Printf("traced %d nodes in %v; pattern finding took %v\n",
			tr.Graph.NumNodes(), traceTime.Round(time.Millisecond),
			res.Phases.Total().Round(time.Millisecond))
		fmt.Print(report.Summary(res))
		if len(res.Patterns) > 0 {
			fmt.Println("modernization suggestions (paper Figure 2b):")
			for _, s := range modernize.SuggestAll(res.Graph, res.Patterns) {
				fmt.Printf("  %s\n", s)
			}
		}
		if sites := built.Prog.QuasiPatternSites(); len(sites) > 0 {
			fmt.Println("quasi-patterns (if-conversion would expose min/max reductions):")
			for _, pos := range sites {
				fmt.Printf("  - %s:%d\n", pos.File, pos.Line)
			}
		}
	case "text":
		fmt.Print(report.Text(built.Prog, res))
	case "html":
		fmt.Print(report.HTML(built.Prog, res))
	case "json":
		// -cache-stats makes the JSON "cache" block explicit even when the
		// run recorded no cache activity (e.g. under -no-cache), so asking
		// for the stats always yields them, zeroed rather than absent.
		// -prescreen-stats does the same for the "prescreen" block.
		data, err := report.JSONWith(res, report.JSONOptions{
			IncludeCacheStats:     *cacheStats,
			IncludePrescreenStats: *prescrStat,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "json export failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}

	if prof != nil {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "profiling failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s, %s\n", prof.CPUPath(), prof.HeapPath())
	}
	if collector != nil {
		if *obsOn {
			fmt.Fprint(os.Stderr, report.PhaseTree(collector, 0))
		}
		if *metrics {
			fmt.Fprint(os.Stderr, report.PrometheusMetrics(collector))
		}
		if *obsOut != "" {
			data, err := report.ObservabilityJSON(collector)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs export failed: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "obs export failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *obsOut)
		}
	}
}
