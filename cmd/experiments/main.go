// Command experiments regenerates the tables and figures of the paper's
// evaluation (§6).
//
// Usage:
//
//	experiments -run all
//	experiments -run table3
//	experiments -run figure7 -factors 1,2,4,8
//
// Available experiments: table1, table2, table3, accuracy, figure7,
// figure8, phases, phasetable, simplify, ablation, all. "bench" (not part of all)
// measures tracing throughput and the pattern-finding fixpoint (cold vs
// warm view cache), writing BENCH_trace.json and BENCH_find.json:
//
//	experiments -run bench -bench-reps 20 -bench-scale 32 -find-reps 10
//
// "tracescale" (also not part of all) runs the out-of-core scale ladder
// alone — md5 at growing inputs under a fixed resident arc-byte budget —
// and with -tracescale-smoke asserts the spill/paging evidence:
//
//	experiments -run tracescale -tracescale-scales 32,320 -tracescale-budget 4194304
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"discovery/internal/core"
	"discovery/internal/experiments"
	"discovery/internal/obs"
	"discovery/internal/report"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment to run")
		factors    = flag.String("factors", "1,2,4", "input scale ladder for figure7")
		budget     = flag.Duration("budget", 0, "global wall-clock budget per pattern finding run (0 = none)")
		solverBudg = flag.Duration("solver-budget", 0, "per-solve constraint solver timeout (0 = the 60s default)")
		solverStep = flag.Int64("solver-steps", 0, "deterministic per-solve step limit, nodes+propagations (0 = none)")
		benchReps  = flag.Int("bench-reps", 20, "repetitions per bench configuration")
		benchScal  = flag.Int64("bench-scale", 32, "input scale for bench (md5 nbuf = 8*scale)")
		benchOut   = flag.String("bench-out", "BENCH_trace.json", "output file for trace bench results")
		findReps   = flag.Int("find-reps", 10, "repetitions per find bench configuration")
		findOut    = flag.String("find-out", "BENCH_find.json", "output file for find bench results")
		scaleList  = flag.String("tracescale-scales", "32,320", "input scale ladder for tracescale (md5 nbuf = 8*scale)")
		scaleBudg  = flag.Int64("tracescale-budget", 4<<20, "resident arc-byte budget for tracescale; over-budget graphs spill")
		scaleSmoke = flag.Bool("tracescale-smoke", false, "assert the tracescale ladder spilled, paged, and stayed under budget (CI gate)")
		obsOn      = flag.Bool("obs", false, "record phase spans and metrics across all runs; print the phase tree to stderr")
		obsOut     = flag.String("obs-out", "", "write the observability JSON document (spans + metrics) to this file (implies -obs)")
		metrics    = flag.Bool("metrics", false, "print metrics in Prometheus text format to stderr (implies -obs)")
		pprofOut   = flag.String("pprof", "", "capture profiles around the experiments into PREFIX.cpu.pprof and PREFIX.heap.pprof")
	)
	flag.Parse()

	// One collector spans every selected experiment; with the flags unset
	// the recorder stays the no-op singleton and outputs are byte-identical
	// to a build without the obs layer.
	rec := obs.Recorder(obs.Nop)
	var collector *obs.Collector
	if *obsOn || *obsOut != "" || *metrics {
		collector = obs.NewCollector()
		rec = collector
	}
	var prof *obs.Profiler
	if *pprofOut != "" {
		p, err := obs.StartProfile(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling failed: %v\n", err)
			os.Exit(1)
		}
		prof = p
	}

	// opts layers the budget flags over the experiments' defaults; with the
	// flags unset the outputs are byte-identical to an unbudgeted build.
	opts := func() core.Options {
		o := experiments.Opts()
		o.Budget = *budget
		o.SolverBudget = *solverBudg
		o.SolverStepLimit = *solverStep
		o.Obs = rec
		return o
	}

	runners := map[string]func() error{
		"table1": func() error {
			text, err := experiments.Table1()
			if err != nil {
				return err
			}
			fmt.Println(text)
			return nil
		},
		"table2": func() error {
			fmt.Println(experiments.Table2())
			return nil
		},
		"table3": func() error {
			res, err := experiments.RunTable3(opts())
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"accuracy": func() error {
			res, err := experiments.RunAccuracy(opts())
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"figure7": func() error {
			var fs []int64
			for _, part := range strings.Split(*factors, ",") {
				f, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return fmt.Errorf("bad factor %q: %w", part, err)
				}
				fs = append(fs, f)
			}
			res, err := experiments.RunFigure7(opts(), fs)
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"figure8": func() error {
			fmt.Println(experiments.Figure8Text())
			return nil
		},
		"phases": func() error {
			res, err := experiments.RunPhases(opts())
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"simplify": func() error {
			res, err := experiments.RunSimplify(opts())
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"phasetable": func() error {
			res, err := experiments.RunPhaseTable(opts())
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			return nil
		},
		"ablation": func() error {
			rows, err := experiments.RunAblations()
			if err != nil {
				return err
			}
			fmt.Println(experiments.AblationsText(rows))
			return nil
		},
		// tracescale is not part of "all": it demonstrates the out-of-core
		// pager bounding resident memory across an input ladder. With
		// -tracescale-smoke it doubles as the CI gate: the run must spill,
		// page, stay under budget, and surface it all through the
		// discovery_ddg_pages_* metrics.
		"tracescale": func() error {
			scales, err := parseScales(*scaleList)
			if err != nil {
				return err
			}
			c := collector
			if c == nil {
				c = obs.NewCollector() // smoke asserts on metrics even without -obs
			}
			res, err := experiments.RunTraceScale(c, scales, *scaleBudg)
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			if *scaleSmoke {
				if err := res.CheckSpill(); err != nil {
					return err
				}
				rendered := report.PrometheusMetrics(c)
				for _, name := range []string{
					obs.MetricDDGSpills,
					obs.MetricDDGPageFaults,
					obs.MetricDDGPagesSpilledBytes,
					obs.MetricDDGPagesPeakResidentBytes,
				} {
					if !strings.Contains(rendered, name) {
						return fmt.Errorf("tracescale: metric %s missing from the collector", name)
					}
				}
				fmt.Println("tracescale smoke: spill, paging, and budget bounds verified")
			}
			return nil
		},
		// bench is not part of "all": it is a timing run, not a paper table.
		"bench": func() error {
			res, err := experiments.RunTraceBench(*benchReps, *benchScal)
			if err != nil {
				return err
			}
			scales, err := parseScales(*scaleList)
			if err != nil {
				return err
			}
			res.TraceScale, err = experiments.RunTraceScale(rec, scales, *scaleBudg)
			if err != nil {
				return err
			}
			fmt.Println(res.Text())
			fmt.Println(res.TraceScale.Text())
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchOut)
			return runFindBench(*findReps, *findOut)
		},
		// findbench runs the find fixpoint benchmark alone, in a process
		// unpolluted by the trace bench's heap (steadier medians).
		"findbench": func() error {
			return runFindBench(*findReps, *findOut)
		},
	}

	order := []string{"table1", "table2", "table3", "accuracy", "figure7",
		"figure8", "phases", "phasetable", "simplify", "ablation"}

	names := []string{*run}
	if *run == "all" {
		names = order
	}
	for _, name := range names {
		fn, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s, bench, tracescale, all\n",
				name, strings.Join(order, ", "))
			os.Exit(1)
		}
		fmt.Printf("================ %s ================\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
	}

	if prof != nil {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "profiling failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s, %s\n", prof.CPUPath(), prof.HeapPath())
	}
	if collector != nil {
		if *obsOn {
			fmt.Fprint(os.Stderr, report.PhaseTree(collector, 0))
		}
		if *metrics {
			fmt.Fprint(os.Stderr, report.PrometheusMetrics(collector))
		}
		if *obsOut != "" {
			data, err := report.ObservabilityJSON(collector)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs export failed: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "obs export failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *obsOut)
		}
	}
}

// parseScales parses a comma-separated scale ladder.
func parseScales(s string) ([]int64, error) {
	var scales []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad scale %q", part)
		}
		scales = append(scales, v)
	}
	return scales, nil
}

// runFindBench measures the find fixpoint and writes the JSON artifact.
func runFindBench(reps int, out string) error {
	res, err := experiments.RunFindBench(reps)
	if err != nil {
		return err
	}
	fmt.Println(res.Text())
	data, err := res.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
