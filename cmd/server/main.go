// Command server runs the pattern-discovery daemon: an HTTP/JSON service
// that analyzes registered Starbench workloads on demand, batching
// concurrent requests through a bounded admission queue over one shared
// view–verdict cache, and memoizing finished reports in a result store so
// resubmissions are answered without re-tracing or re-solving.
//
// Usage:
//
//	server -addr :8080 -store disk -store-dir /var/lib/discovery
//	curl -s localhost:8080/analyze -d '{"bench":"md5","version":"pthreads"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"discovery/internal/fault"
	"discovery/internal/server"
	"discovery/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeKind  = flag.String("store", "memory", "result store backend: memory, disk, or none")
		storeDir   = flag.String("store-dir", "discovery-store", "directory for -store disk")
		inflight   = flag.Int("max-inflight", 2, "concurrent analysis workers")
		queueDepth = flag.Int("queue", 16, "admission queue depth beyond the workers (full queue => 503)")
		defBudget  = flag.Duration("default-budget", 60*time.Second, "per-request budget when the request sets none")
		maxBudget  = flag.Duration("max-budget", 5*time.Minute, "ceiling on requested budgets")
		cacheGens  = flag.Int("cache-gens", 16, "coexisting ViewCache generations (distinct graph+options fingerprints)")
		schedWork  = flag.Int("sched-workers", 0, "shared solve-scheduler pool size across all requests (0 = GOMAXPROCS)")
		memBudget  = flag.Int64("trace-memory-budget", 0, "per-request resident DDG arc-byte budget; larger graphs page through unlinked spill files (0 = fully resident)")
		spillDir   = flag.String("ddg-spill-dir", "", "directory for DDG spill files (default: the system temp dir)")

		// Resilience: retry/breaker/fallback around the store, admission
		// brownout, and the deterministic fault-injection seam.
		noResilience  = flag.Bool("no-resilience", false, "use the store bare: no retry, breaker, or memory fallback")
		storeRetries  = flag.Int("store-retries", 3, "total tries per store operation")
		storeRetryMin = flag.Duration("store-retry-base", 10*time.Millisecond, "backoff before the first store retry (doubles, capped)")
		brkThreshold  = flag.Int("breaker-threshold", 5, "consecutive store failures that trip the circuit breaker")
		brkCooldown   = flag.Duration("breaker-cooldown", 15*time.Second, "how long a tripped breaker fails fast before probing")
		noBrownout    = flag.Bool("no-brownout", false, "disable admission brownout (pressure-clamped budgets)")
		brownoutAt    = flag.Float64("brownout-threshold", 0.75, "queue occupancy where budget clamping starts")
		brownoutMin   = flag.Float64("brownout-min", 0.1, "budget fraction still granted at 100% queue occupancy")
		faultPlan     = flag.String("fault-plan", "", "JSON fault plan for chaos testing (see internal/fault); empty = none")
	)
	flag.Parse()

	var st store.Store
	switch *storeKind {
	case "memory":
		st = store.NewMemory()
	case "disk":
		d, err := store.NewDisk(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening store: %v\n", err)
			os.Exit(1)
		}
		st = d
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown store backend %q (memory, disk, or none)\n", *storeKind)
		os.Exit(1)
	}

	cfg := server.Config{
		MaxInFlight:      *inflight,
		QueueDepth:       *queueDepth,
		DefaultBudget:    *defBudget,
		MaxBudget:        *maxBudget,
		CacheGenerations: *cacheGens,
		SchedWorkers:     *schedWork,
		SpillBudget:      *memBudget,
		SpillDir:         *spillDir,
		Store:            st,
		Resilience: server.ResilienceConfig{
			Disable:          *noResilience,
			RetryAttempts:    *storeRetries,
			RetryBase:        *storeRetryMin,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
		},
		Brownout: server.BrownoutConfig{
			Disable:     *noBrownout,
			Threshold:   *brownoutAt,
			MinFraction: *brownoutMin,
		},
	}

	// A fault plan turns the daemon into its own chaos subject: scripted,
	// deterministic failures on the store and at phase boundaries. Never
	// set one in production.
	if *faultPlan != "" {
		plan, err := fault.Load(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading fault plan: %v\n", err)
			os.Exit(1)
		}
		if st != nil {
			cfg.Store = plan.Store(st)
		}
		cfg.PhaseHook = plan.PhaseHook()
		fmt.Fprintf(os.Stderr, "fault plan %q armed (seed %d)\n", plan.Name(), plan.Seed())
	}

	srv := server.New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "discovery server listening on %s (store=%s, workers=%d, queue=%d)\n",
		*addr, *storeKind, *inflight, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serving: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	srv.Close()
	if st != nil {
		st.Close()
	}
}
