// Command server runs the pattern-discovery daemon: an HTTP/JSON service
// that analyzes registered Starbench workloads on demand, batching
// concurrent requests through a bounded admission queue over one shared
// view–verdict cache, and memoizing finished reports in a result store so
// resubmissions are answered without re-tracing or re-solving.
//
// Usage:
//
//	server -addr :8080 -store disk -store-dir /var/lib/discovery
//	curl -s localhost:8080/analyze -d '{"bench":"md5","version":"pthreads"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"discovery/internal/server"
	"discovery/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeKind  = flag.String("store", "memory", "result store backend: memory, disk, or none")
		storeDir   = flag.String("store-dir", "discovery-store", "directory for -store disk")
		inflight   = flag.Int("max-inflight", 2, "concurrent analysis workers")
		queueDepth = flag.Int("queue", 16, "admission queue depth beyond the workers (full queue => 503)")
		defBudget  = flag.Duration("default-budget", 60*time.Second, "per-request budget when the request sets none")
		maxBudget  = flag.Duration("max-budget", 5*time.Minute, "ceiling on requested budgets")
		cacheGens  = flag.Int("cache-gens", 16, "coexisting ViewCache generations (distinct graph+options fingerprints)")
	)
	flag.Parse()

	var st store.Store
	switch *storeKind {
	case "memory":
		st = store.NewMemory()
	case "disk":
		d, err := store.NewDisk(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening store: %v\n", err)
			os.Exit(1)
		}
		st = d
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown store backend %q (memory, disk, or none)\n", *storeKind)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		MaxInFlight:      *inflight,
		QueueDepth:       *queueDepth,
		DefaultBudget:    *defBudget,
		MaxBudget:        *maxBudget,
		CacheGenerations: *cacheGens,
		Store:            st,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "discovery server listening on %s (store=%s, workers=%d, queue=%d)\n",
		*addr, *storeKind, *inflight, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serving: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	srv.Close()
	if st != nil {
		st.Close()
	}
}
