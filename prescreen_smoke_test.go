package discovery

// Prescreen observability smoke test, run by `make benchsmoke` alongside
// the obs overhead gate: a real find over a Starbench workload must export
// the prescreen skip-rate counter under its canonical metric name, with
// the per-kind label. Catches the two silent breakages — the scheduler no
// longer feeding the counter, or the metric name drifting from
// internal/obs/names.go while dashboards still query the old one.

import (
	"strings"
	"testing"

	"discovery/internal/core"
	"discovery/internal/obs"
	"discovery/internal/report"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func TestPrescreenSkipRateExported(t *testing.T) {
	bench := starbench.ByName("streamcluster")
	built := bench.Build(starbench.Pthreads, bench.Analysis)
	tr, err := trace.Run(built.Prog)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	res := core.Find(tr.Graph, core.Options{Workers: 2, VerifyMatches: true, Obs: col})
	checks, skips := res.PrescreenStats()
	if checks == 0 || skips == 0 {
		t.Fatalf("default find ran %d prescreen check(s) with %d skip(s); want both positive", checks, skips)
	}

	text := report.PrometheusMetrics(col)
	for _, name := range []string{obs.MetricPrescreenSkips, obs.MetricPrescreenChecks, obs.MetricPrescreenSeconds} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %q missing from the Prometheus export", name)
		}
	}
	// The skip counter must carry the kind label like the other solver
	// counters do.
	if !strings.Contains(text, obs.MetricPrescreenSkips+"{kind=") {
		t.Errorf("%s exported without its kind label:\n%s", obs.MetricPrescreenSkips, text)
	}
}
