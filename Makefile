# Build, vet, test, and race-check the reproduction.
#
#   make check   — everything below in sequence (the tier-1 gate + races)
#   make race    — race-detector pass over the concurrency-bearing packages
#   make bench   — trace throughput benchmark (writes BENCH_trace.json)

GO ?= go

.PHONY: check build vet test race bench

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/trace/... ./internal/vm/... ./internal/pagetab/... ./internal/core/...

bench:
	GOMAXPROCS=4 $(GO) run ./cmd/experiments -run bench -bench-reps 20 -bench-scale 32
