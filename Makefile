# Build, vet, test, and race-check the reproduction.
#
#   make check   — everything below in sequence (the tier-1 gate + races)
#   make race    — race-detector pass over the concurrency-bearing packages
#   make fuzz    — short native-fuzzing pass over the crash-safety targets
#   make bench   — trace + find benchmarks (BENCH_trace.json, BENCH_find.json)
#   make benchsmoke — one-iteration find benchmark (CI sanity check)

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench benchsmoke

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/trace/... ./internal/vm/... ./internal/pagetab/... ./internal/core/...

# Each target runs for FUZZTIME; Go's fuzzer accepts one -fuzz pattern per
# package invocation, so the targets run in sequence.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzMIRValidate$$' -fuzztime $(FUZZTIME) ./internal/mir
	$(GO) test -run '^$$' -fuzz '^FuzzVM$$' -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run '^$$' -fuzz '^FuzzSolver$$' -fuzztime $(FUZZTIME) ./internal/cp
	$(GO) test -run '^$$' -fuzz '^FuzzFinalize$$' -fuzztime $(FUZZTIME) ./internal/trace

bench:
	GOMAXPROCS=4 $(GO) run ./cmd/experiments -run bench -bench-reps 20 -bench-scale 32

# One timed iteration of the find fixpoint benchmark: catches bit-rot in
# the benchmark itself without the cost of a real measurement run.
benchsmoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFindFixpoint$$' -benchtime=1x .
