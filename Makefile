# Build, vet, test, and race-check the reproduction.
#
#   make check   — everything below in sequence (the tier-1 gate + races)
#   make race    — race-detector pass over the concurrency-bearing packages
#   make fuzz    — short native-fuzzing pass over the crash-safety targets
#   make bench   — trace + find benchmarks (BENCH_trace.json, BENCH_find.json)
#   make benchsmoke — one-iteration find benchmark + obs overhead gate
#   make cover   — coverage floors for internal/core and internal/obs
#   make serversmoke — end-to-end daemon check: cold run, warm store hit
#   make chaos   — fault-injection suite + chaos smoke against the binary
#   make tracescale — out-of-core smoke: a trace 10× the bench input must
#                  spill, page under the budget, and export the
#                  discovery_ddg_pages_* metrics

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench findbench benchsmoke cover serversmoke chaos tracescale

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/trace/... ./internal/ddg/... ./internal/vm/... ./internal/pagetab/... ./internal/core/... ./internal/sched/... ./internal/obs/... ./internal/server/... ./internal/store/... ./internal/fault/...

# Each target runs for FUZZTIME; Go's fuzzer accepts one -fuzz pattern per
# package invocation, so the targets run in sequence.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzMIRValidate$$' -fuzztime $(FUZZTIME) ./internal/mir
	$(GO) test -run '^$$' -fuzz '^FuzzVM$$' -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run '^$$' -fuzz '^FuzzSolver$$' -fuzztime $(FUZZTIME) ./internal/cp
	$(GO) test -run '^$$' -fuzz '^FuzzFinalize$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzPrescreen$$' -fuzztime $(FUZZTIME) ./internal/patterns
	$(GO) test -run '^$$' -fuzz '^FuzzPagedCSR$$' -fuzztime $(FUZZTIME) ./internal/ddg

bench:
	GOMAXPROCS=4 $(GO) run ./cmd/experiments -run bench -bench-reps 20 -bench-scale 32

# The find benchmark alone, in its own process at the machine's native
# GOMAXPROCS: the trace bench needs 4 threads for its speedup table, but
# its heap and the forced oversubscription only add variance to the find
# fixpoint timings (this regenerates BENCH_find.json).
findbench:
	$(GO) run ./cmd/experiments -run findbench -find-reps 41

# One timed iteration of the find fixpoint benchmark: catches bit-rot in
# the benchmark itself without the cost of a real measurement run. The
# second command checks that the prescreen skip-rate counter is exported
# under its canonical name (internal/obs/names.go). The third runs the
# disabled-observability overhead gate: the find fixpoint with the no-op
# recorder must stay within 2% of running with no recorder at all (the
# zero-cost-when-disabled contract, DESIGN.md §12).
benchsmoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFindFixpoint$$' -benchtime=1x .
	$(GO) test -run '^TestPrescreenSkipRateExported$$' -count=1 .
	OBS_OVERHEAD=1 $(GO) test -run '^TestNopRecorderOverhead$$' .

# Build and drive the real daemon binary: cold run computes and stores,
# the identical resubmission must be a store hit with zero solver runs.
serversmoke:
	sh scripts/serversmoke.sh

# The chaos harness: resilience and fault-injection unit suites under the
# race detector, the scripted-plan chaos tests over the serving stack,
# then the smoke script driving the real binary through a crash-recovery
# restart and a scripted store outage.
chaos:
	$(GO) test -race -count=1 ./internal/fault/ ./internal/store/
	$(GO) test -race -count=1 -run Chaos ./internal/server/
	sh scripts/chaossmoke.sh

# The out-of-core smoke gate: trace md5 at 4× and 40× the stress input
# under a 256 KiB arc-byte budget; the large trace must spill, fault its
# way through a full adjacency sweep, keep peak resident bytes inside the
# budget headroom, and export it all as discovery_ddg_pages_* metrics.
tracescale:
	$(GO) run ./cmd/experiments -run tracescale -tracescale-scales 4,40 -tracescale-budget 262144 -tracescale-smoke

# Coverage floors. The thresholds sit a few points under the levels the
# suite reaches at the time of writing (core 95%, obs 92%, sched 94%,
# trace 93%, ddg 92%), so real regressions fail while test-order jitter
# does not.
cover:
	@mkdir -p .cover
	$(GO) test -coverprofile=.cover/core.out ./internal/core/
	$(GO) test -coverprofile=.cover/obs.out ./internal/obs/
	$(GO) test -coverprofile=.cover/sched.out ./internal/sched/
	$(GO) test -coverprofile=.cover/trace.out ./internal/trace/
	$(GO) test -coverprofile=.cover/ddg.out ./internal/ddg/
	@for spec in core:90 obs:88 sched:90 trace:88 ddg:90; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) tool cover -func=.cover/$$pkg.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		if [ "$$(echo "$$pct $$floor" | awk '{ print ($$1 >= $$2) }')" != 1 ]; then \
			echo "coverage regression in internal/$$pkg: $$pct% < $$floor%"; exit 1; \
		fi; \
	done
