// Quickstart: build a small legacy-style program, trace its execution into
// a dynamic dataflow graph, run the iterative pattern finder, and print
// the report.
//
// The program computes a sum of squares the way legacy code does — an
// explicit loop with an accumulator — and the analysis discovers that it
// is a linear map-reduction, i.e. that it could be rewritten as a single
// MapReduce skeleton call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"discovery/internal/core"
	"discovery/internal/mir"
	"discovery/internal/report"
	"discovery/internal/trace"
)

func main() {
	// 1. Build the legacy program in the analysis IR:
	//
	//	for i in 0..16: data[i] = i / 16
	//	sum = 0
	//	for i in 0..16: sum += data[i] * data[i]
	//	result = sum / 16
	prog := mir.NewProgram("sumsquares")
	prog.DeclareStatic("data", 16)
	prog.DeclareStatic("result", 1)
	f, b := prog.NewFunc("main", "sumsquares.c")
	b.For("i", mir.C(0), mir.C(16), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("data"), mir.V("i")),
			mir.FDiv(mir.I2F(mir.V("i")), mir.F(16)))
	})
	b.Assign("sum", mir.F(0))
	b.For("i", mir.C(0), mir.C(16), mir.C(1), func(b *mir.Block) {
		b.Assign("x", mir.Load(mir.Idx(mir.G("data"), mir.V("i"))))
		b.Assign("sum", mir.FAdd(mir.V("sum"), mir.FMul(mir.V("x"), mir.V("x"))))
	})
	b.Store(mir.Idx(mir.G("result"), mir.C(0)), mir.FDiv(mir.V("sum"), mir.F(16)))
	b.Finish(f)

	// 2. Trace an instrumented execution into a dynamic dataflow graph.
	tr, err := trace.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d operation executions, %d dataflow arcs\n\n",
		tr.Graph.NumNodes(), tr.Graph.NumArcs())

	// 3. Run the iterative pattern finder.
	res := core.Find(tr.Graph, core.Options{VerifyMatches: true})

	// 4. Report. The accumulation loop is discovered to be a linear
	// map-reduction (the squaring map fused with the sum reduction),
	// found across three iterations exactly as in the paper's Table 1.
	fmt.Print(report.Summary(res))
	fmt.Println()
	fmt.Print(report.Text(prog, res))
}
