// extensions: the future-work features of the paper (§8, §9) implemented
// in this reproduction:
//
//  1. stencil detection — a Jacobi smoothing loop is refined from a map
//     into a stencil (components read overlapping neighbourhoods);
//  2. if-conversion — a running-minimum loop written as a conditional
//     update (invisible to dataflow analysis, paper §8) becomes a linear
//     fmin reduction after converting the control dependence into a data
//     dependence;
//  3. pipeline detection — a two-stage stream decoder in the shape of
//     h264dec (which the paper excluded precisely because it follows a
//     pipeline pattern) is recognized from the staged item flow between
//     its stateful stage loops.
//
// Tree reductions (GPU-style combining trees) are the fourth extension;
// see internal/core's extension tests.
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"discovery/internal/core"
	"discovery/internal/mir"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func analyze(prog *mir.Program, extensions bool) *core.Result {
	tr, err := trace.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	return core.Find(tr.Graph, core.Options{VerifyMatches: true, Extensions: extensions})
}

func show(title string, res *core.Result) {
	fmt.Printf("%s\n", title)
	for _, p := range res.Patterns {
		fmt.Printf("  - %s (%s)\n", p.Kind, p.OpsSummary(res.Graph))
	}
	if len(res.Patterns) == 0 {
		fmt.Println("  (no patterns)")
	}
}

func jacobi() *mir.Program {
	p := mir.NewProgram("jacobi")
	p.DeclareStatic("in", 12)
	p.DeclareStatic("out", 12)
	p.DeclareStatic("emit", 12)
	f, b := p.NewFunc("main", "jacobi.c")
	b.For("i", mir.C(0), mir.C(12), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("in"), mir.V("i")),
			mir.FDiv(mir.I2F(mir.Mod(mir.Mul(mir.V("i"), mir.C(97)), mir.C(31))), mir.F(31)))
	})
	b.For("i", mir.C(1), mir.C(11), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("out"), mir.V("i")),
			mir.FDiv(mir.FAdd(mir.FAdd(
				mir.Load(mir.Idx(mir.G("in"), mir.Sub(mir.V("i"), mir.C(1)))),
				mir.Load(mir.Idx(mir.G("in"), mir.V("i")))),
				mir.Load(mir.Idx(mir.G("in"), mir.Add(mir.V("i"), mir.C(1))))),
				mir.F(3)))
	})
	b.For("i", mir.C(1), mir.C(11), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("emit"), mir.V("i")),
			mir.FDiv(mir.Load(mir.Idx(mir.G("out"), mir.V("i"))), mir.F(8)))
	})
	b.Finish(f)
	p.SetEntry("main")
	return p.MustValidate()
}

func minLoop() *mir.Program {
	p := mir.NewProgram("minloop")
	p.DeclareStatic("data", 8)
	p.DeclareStatic("result", 1)
	f, b := p.NewFunc("main", "minloop.c")
	b.For("i", mir.C(0), mir.C(8), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("data"), mir.V("i")),
			mir.FDiv(mir.I2F(mir.Mod(mir.Mul(mir.V("i"), mir.C(53)), mir.C(17))), mir.F(17)))
	})
	b.Assign("best", mir.F(1e30))
	b.For("i", mir.C(0), mir.C(8), mir.C(1), func(b *mir.Block) {
		b.Assign("x", mir.Load(mir.Idx(mir.G("data"), mir.V("i"))))
		b.If(mir.Lt(mir.V("x"), mir.V("best")), func(b *mir.Block) {
			b.Assign("best", mir.V("x"))
		})
	})
	b.Store(mir.Idx(mir.G("result"), mir.C(0)), mir.FMul(mir.V("best"), mir.F(2)))
	b.Finish(f)
	p.SetEntry("main")
	return p.MustValidate()
}

func main() {
	// 1. Stencil refinement.
	fmt.Println("== 1. Jacobi smoothing ==")
	show("baseline (paper's pattern set):", analyze(jacobi(), false))
	show("with extensions:", analyze(jacobi(), true))

	// 2. If-conversion of the running minimum.
	fmt.Println("\n== 2. Running minimum (conditional update) ==")
	show("as written (the paper's §8 limitation):", analyze(minLoop(), false))
	converted := minLoop()
	n := converted.IfConvert()
	fmt.Printf("if-conversion rewrote %d conditional(s)\n", n)
	show("after if-conversion:", analyze(converted, false))

	// 3. Pipeline detection on the h264dec-shaped stream decoder.
	fmt.Println("\n== 3. Two-stage stream decoder (h264dec shape) ==")
	h264 := starbench.H264Mini().Build(starbench.Pthreads, starbench.H264Mini().Analysis)
	show("baseline (why the paper excluded h264dec):", analyze(h264.Prog, false))
	h264b := starbench.H264Mini().Build(starbench.Pthreads, starbench.H264Mini().Analysis)
	show("with extensions:", analyze(h264b.Prog, true))
}
