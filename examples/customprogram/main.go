// customprogram: analyzing your own code.
//
// This example writes a two-stage image pipeline in the analysis IR — a
// brightness adjustment followed by a threshold mask, split across two
// worker threads with the classic Pthreads idiom — and shows that the
// finder discovers the two maps and fuses them, then emits the annotated
// HTML report (the paper's Figure 6 output format) to stdout.
//
// Run with: go run ./examples/customprogram > report.html
package main

import (
	"fmt"
	"log"
	"os"

	"discovery/internal/core"
	"discovery/internal/mir"
	"discovery/internal/report"
	"discovery/internal/trace"
)

func buildPipeline(n, nproc int64) *mir.Program {
	p := mir.NewProgram("pipeline")
	p.DeclareStatic("img", n)
	p.DeclareStatic("bright", n)
	p.DeclareStatic("mask", n)
	p.DeclareStatic("out", n)

	// Stage 1 (brighten.c): bright[i] = img[i]*1.2 + 0.05
	f1, b1 := p.NewFunc("brightenRange", "brighten.c", "k1", "k2")
	b1.For("i", mir.V("k1"), mir.V("k2"), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("bright"), mir.V("i")),
			mir.FAdd(mir.FMul(mir.Load(mir.Idx(mir.G("img"), mir.V("i"))), mir.F(1.2)),
				mir.F(0.05)))
	})
	b1.Finish(f1)

	// Stage 2 (maskop.c): mask[i] = bright[i] * 2 (kept unconditional so
	// the stages fuse into one map).
	f2, b2 := p.NewFunc("maskRange", "maskop.c", "k1", "k2")
	b2.For("i", mir.V("k1"), mir.V("k2"), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("mask"), mir.V("i")),
			mir.FMul(mir.Load(mir.Idx(mir.G("bright"), mir.V("i"))), mir.F(2)))
	})
	b2.Finish(f2)

	w, wb := p.NewFunc("worker", "pipeline.c", "pid")
	per := n / nproc
	wb.Assign("k1", mir.Mul(mir.V("pid"), mir.C(per)))
	wb.Assign("k2", mir.Add(mir.V("k1"), mir.C(per)))
	wb.CallStmt("brightenRange", mir.V("k1"), mir.V("k2"))
	wb.CallStmt("maskRange", mir.V("k1"), mir.V("k2"))
	wb.Finish(w)

	f, b := p.NewFunc("main", "pipeline.c")
	b.For("i", mir.C(0), mir.C(n), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("img"), mir.V("i")),
			mir.FDiv(mir.I2F(mir.Mod(mir.Mul(mir.V("i"), mir.C(37)), mir.C(255))), mir.F(255)))
	})
	b.For("t", mir.C(0), mir.C(nproc), mir.C(1), func(b *mir.Block) {
		b.Spawn("h", "worker", mir.V("t"))
	})
	b.For("t", mir.C(0), mir.C(nproc), mir.C(1), func(b *mir.Block) {
		b.Join(mir.Add(mir.V("t"), mir.C(1)))
	})
	// Drain the mask so the second stage has output arcs.
	b.For("i", mir.C(0), mir.C(n), mir.C(1), func(b *mir.Block) {
		b.Store(mir.Idx(mir.G("out"), mir.V("i")),
			mir.FSub(mir.Load(mir.Idx(mir.G("mask"), mir.V("i"))), mir.F(0.5)))
	})
	b.Finish(f)
	p.SetEntry("main")
	return p.MustValidate()
}

func main() {
	prog := buildPipeline(16, 2)
	tr, err := trace.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Find(tr.Graph, core.Options{VerifyMatches: true})

	fmt.Fprintf(os.Stderr, "found %d patterns:\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Fprintf(os.Stderr, "  - %s (%s)\n", p.Kind, p.OpsSummary(res.Graph))
	}
	fmt.Fprintln(os.Stderr, "writing HTML report to stdout")
	fmt.Print(report.HTML(prog, res))
}
