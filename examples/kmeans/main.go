// kmeans: a case study in what the analysis finds and what its heuristics
// miss (paper §6.1).
//
// The kmeans kernel assigns each point to its nearest center (a map whose
// output — the cluster index — is consumed only by memory addressing) and
// accumulates coordinates per cluster (a reduction). DDG simplification
// removes address computations, which strips the candidate map's output
// arcs: the reduction is found, but the map and the enclosing
// map-reduction are missed — the two kmeans misses of the paper's Table 3.
//
// Run with: go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"discovery/internal/core"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func main() {
	bench := starbench.ByName("kmeans")
	for _, version := range starbench.Versions() {
		fmt.Printf("== kmeans/%s ==\n", version)
		built := bench.Build(version, bench.Analysis)
		tr, err := trace.Run(built.Prog)
		if err != nil {
			log.Fatal(err)
		}
		res := core.Find(tr.Graph, core.Options{VerifyMatches: true})

		// Score against the ground truth from the manual studies.
		eval, err := starbench.Evaluate(bench, version, core.Options{VerifyMatches: true})
		if err != nil {
			log.Fatal(err)
		}
		for _, er := range eval.Expectations {
			switch {
			case er.Missed && !er.Found:
				fmt.Printf("  %-3s correctly missed: %s\n", er.Label, er.MissReason)
			case er.Missed && er.Found:
				fmt.Printf("  %-3s UNEXPECTEDLY found\n", er.Label)
			case er.Found:
				fmt.Printf("  %-3s found in iteration %d\n", er.Label, er.FoundIteration)
			default:
				fmt.Printf("  %-3s NOT found\n", er.Label)
			}
		}
		fmt.Printf("  (traced %d nodes; %d patterns reported in total)\n\n",
			res.OriginalNodes, len(res.Patterns))
	}

	fmt.Println("The reduction variant differs by construction: linear in the")
	fmt.Println("sequential version, tiled (per-thread partials + final combine)")
	fmt.Println("in the Pthreads version — while the analysis itself is oblivious")
	fmt.Println("to which version it is looking at.")
}
