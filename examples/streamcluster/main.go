// Streamcluster end to end: the paper's running example (§2) and
// portability case study (§6.3).
//
// The example analyzes the Pthreads streamcluster benchmark, showing the
// iterative discovery of the tiled map-reduction (reduction found first,
// the distance map exposed by subtraction, the compound pattern formed by
// fusion — the paper's Table 1), and then runs the portability study: the
// modernized (skeleton-based) streamcluster against the legacy threaded
// version and a CUDA port on two simulated machines (the paper's
// Figure 8).
//
// Run with: go run ./examples/streamcluster
package main

import (
	"fmt"
	"log"

	"discovery/internal/core"
	"discovery/internal/machine"
	"discovery/internal/sc"
	"discovery/internal/skel"
	"discovery/internal/starbench"
	"discovery/internal/trace"
)

func main() {
	// --- Part 1: find the patterns in the legacy parallel code.
	bench := starbench.ByName("streamcluster")
	built := bench.Build(starbench.Pthreads, bench.Analysis)
	tr, err := trace.Run(built.Prog)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Find(tr.Graph, core.Options{VerifyMatches: true})

	fmt.Println("== Pattern discovery in Pthreads streamcluster ==")
	fmt.Printf("traced DDG: %d nodes, simplified to %d\n",
		res.OriginalNodes, res.SimplifiedNodes)
	for it := 1; it <= res.Iterations; it++ {
		var kinds []string
		for _, m := range res.Matches {
			if m.Iteration == it {
				kinds = append(kinds, m.Pattern.Kind.Short())
			}
		}
		fmt.Printf("iteration %d matched: %v\n", it, kinds)
	}
	fmt.Printf("final reported patterns: %d\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Printf("  - %s (%s)\n", p.Kind, p.OpsSummary(res.Graph))
	}

	// --- Part 2: the modernized code is portable across machines.
	fmt.Println("\n== Portability of the modernized code (Figure 8) ==")
	pts := sc.GeneratePoints(4096, 16)
	seq := sc.Sequential(pts)
	leg := sc.Legacy(pts, 4)
	mod := sc.Modernized(skel.NewContext(machine.CPUCentric()), pts)
	fmt.Printf("correctness: sequential hiz=%.4f legacy hiz=%.4f modernized hiz=%.4f\n",
		seq.Hiz, leg.Hiz, mod.Hiz)

	for _, row := range sc.Figure8() {
		fmt.Printf("%-48s %-30s %5.1fx (%s)\n", row.Arch, row.Impl, row.Speedup, row.Backend)
	}
	fmt.Println("\nThe modernized version tracks the best hardware on each")
	fmt.Println("machine with zero code changes: the portability the paper's")
	fmt.Println("analysis unlocks for legacy parallel code.")
}
